"""Clustered hierarchy construction (Fig. 1 of the paper).

Recursive application of the LCA election: level-0 is the physical
unit-disk graph; the elected clusterheads become the level-1 node set,
linked when their clusters are adjacent; and so on until the topology
stops shrinking (single node, or no remaining links).

:class:`ClusteredHierarchy` is an immutable snapshot.  The simulator
builds one per step and diffs consecutive snapshots to detect migration
and reorganization events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.lca import Election, elect
from repro.clustering.maxmin import maxmin_cluster
from repro.hierarchy.cluster_graph import canonical_edges, contract_edges

__all__ = ["LevelTopology", "ClusteredHierarchy", "build_hierarchy"]


@dataclass(frozen=True)
class LevelTopology:
    """One level of the clustered hierarchy.

    ``election`` is the LCA outcome that produced level ``k + 1`` from
    this level; it is ``None`` for the top level, where clustering was
    not applied (or did not shrink the topology further).
    """

    k: int
    node_ids: np.ndarray
    edges: np.ndarray
    election: Election | None

    @property
    def n_nodes(self) -> int:
        return int(self.node_ids.size)

    @property
    def n_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def mean_degree(self) -> float:
        """d_k of Eq. (1a)."""
        if self.n_nodes == 0:
            return 0.0
        return 2.0 * self.n_edges / self.n_nodes


class ClusteredHierarchy:
    """Immutable multi-level clustered hierarchy snapshot.

    Attributes
    ----------
    levels:
        ``levels[k]`` is the level-k topology; ``levels[0]`` is the
        physical graph.  ``num_levels`` (= L) counts clustering
        applications, so ``len(levels) == L + 1``.
    """

    def __init__(self, levels: list[LevelTopology]):
        if not levels:
            raise ValueError("hierarchy needs at least the physical level")
        self.levels = levels
        self._base_ids = levels[0].node_ids
        # Ancestor maps: _anc[k][i] = level-k cluster (ID) of base node i.
        anc = [self._base_ids.copy()]
        for lvl in levels[:-1]:
            assert lvl.election is not None
            idx = np.searchsorted(lvl.node_ids, anc[-1])
            anc.append(lvl.election.member_of[idx])
        self._anc = anc

    # -- basic shape ----------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """L: number of clustering levels applied."""
        return len(self.levels) - 1

    @property
    def n(self) -> int:
        """|V|: physical node count."""
        return self.levels[0].n_nodes

    def level_sizes(self) -> list[int]:
        """[|V_0|, |V_1|, ..., |V_L|]."""
        return [lvl.n_nodes for lvl in self.levels]

    # -- membership -------------------------------------------------------------

    def _base_index(self, v) -> np.ndarray:
        arr = np.asarray(v, dtype=np.int64).reshape(-1)
        idx = np.searchsorted(self._base_ids, arr)
        if np.any(idx >= self._base_ids.size) or np.any(self._base_ids[idx] != arr):
            raise KeyError(f"unknown node id(s) in {arr!r}")
        return idx

    def cluster_of(self, v: int, k: int) -> int:
        """ID of the level-k cluster containing physical node ``v``.

        ``cluster_of(v, 0) == v``; for k = L it is the top-level ancestor.
        """
        if not 0 <= k <= self.num_levels:
            raise ValueError(f"level {k} outside 0..{self.num_levels}")
        return int(self._anc[k][self._base_index(v)[0]])

    def ancestry(self, k: int) -> np.ndarray:
        """Level-k cluster ID for *every* physical node (aligned with
        ``levels[0].node_ids``)."""
        if not 0 <= k <= self.num_levels:
            raise ValueError(f"level {k} outside 0..{self.num_levels}")
        return self._anc[k]

    def address(self, v: int) -> tuple[int, ...]:
        """Hierarchical address (top-level cluster, ..., level-1 cluster, v).

        Strict hierarchical routing forwards packets on exactly this
        address (Section 2.1).
        """
        i = self._base_index(v)[0]
        return tuple(int(self._anc[k][i]) for k in range(self.num_levels, -1, -1))

    def clusters(self, k: int) -> dict[int, np.ndarray]:
        """Partition of level-(k-1) nodes into level-k clusters."""
        if not 1 <= k <= self.num_levels:
            raise ValueError(f"level {k} outside 1..{self.num_levels}")
        election = self.levels[k - 1].election
        assert election is not None
        return election.clusters()

    def members0(self, k: int, cluster_id: int) -> np.ndarray:
        """Physical nodes whose level-k ancestor is ``cluster_id``."""
        if not 0 <= k <= self.num_levels:
            raise ValueError(f"level {k} outside 0..{self.num_levels}")
        return self._base_ids[self._anc[k] == cluster_id]

    def highest_level_of(self, v: int) -> int:
        """Largest k such that ``v`` is a level-k node."""
        self._base_index(v)  # validate
        level = 0
        for k in range(1, len(self.levels)):
            ids = self.levels[k].node_ids
            i = np.searchsorted(ids, v)
            if i < ids.size and ids[i] == v:
                level = k
            else:
                break
        return level

    # -- misc -------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = "/".join(str(s) for s in self.level_sizes())
        return f"ClusteredHierarchy(L={self.num_levels}, sizes={sizes})"


def build_hierarchy(
    node_ids,
    edges,
    max_levels: int | None = None,
    algorithm: str = "lca",
    maxmin_d: int = 2,
    level_mode: str = "contraction",
    positions=None,
    r0: float | None = None,
) -> ClusteredHierarchy:
    """Cluster ``(node_ids, edges)`` recursively into a hierarchy.

    Parameters
    ----------
    node_ids, edges:
        The physical (level-0) topology; IDs are arbitrary unique ints,
        edges are ID pairs.
    max_levels:
        Stop after this many clustering applications (None = cluster
        until the topology stops shrinking: one node left, or no links).
    algorithm:
        ``"lca"`` (the paper's ALCA; default) or ``"maxmin"`` (the
        Amis et al. baseline, with radius ``maxmin_d``).
    level_mode:
        How level-k links (E_k, k >= 1) are derived:

        * ``"contraction"`` — two clusterheads are linked iff their
          clusters are adjacent (some level-(k-1) link crosses).  Simple,
          but adjacency can hinge on one boundary link, so high-level
          links flicker under mobility.
        * ``"radio"`` — level-k nodes are linked iff their *positions*
          are within ``r_k = r0 * sqrt(|V|/|V_k|)``: the same unit-disk
          construction as level 0, with the radius scaled so mean level
          degree stays constant.  This is the geometric cluster-link
          model the paper's own Section 5.3.1 analysis assumes ("the
          relative distance separating neighbor clusterheads ...
          Theta(sqrt(c_k))"), and it yields the Theta(1/h_k) link-change
          frequencies the gamma bound requires.  Requires ``positions``
          (aligned with sorted node_ids) and ``r0`` (the level-0 radius).
    positions, r0:
        Only used (and required) for ``level_mode="radio"``.
    """
    if algorithm not in ("lca", "maxmin"):
        raise ValueError(f"unknown clustering algorithm {algorithm!r}")
    if level_mode not in ("contraction", "radio"):
        raise ValueError(f"unknown level_mode {level_mode!r}")
    cur_ids = np.unique(np.asarray(list(node_ids), dtype=np.int64))
    cur_edges = canonical_edges(edges)
    if level_mode == "radio":
        if positions is None or r0 is None:
            raise ValueError("radio level_mode requires positions and r0")
        pos = np.asarray(positions, dtype=np.float64)
        if pos.shape[0] != cur_ids.size:
            raise ValueError("positions must align with node_ids")
        base_ids = cur_ids
        n0 = cur_ids.size
    levels: list[LevelTopology] = []
    k = 0
    while True:
        at_cap = max_levels is not None and k >= max_levels
        if at_cap or cur_ids.size <= 1 or cur_edges.shape[0] == 0:
            levels.append(LevelTopology(k, cur_ids, cur_edges, election=None))
            break
        if algorithm == "lca":
            result = elect(cur_ids, cur_edges)
            member_of = result.member_of
            heads = result.clusterheads
        else:
            mm = maxmin_cluster(cur_ids, cur_edges, d=maxmin_d)
            member_of = mm.head_choice
            heads = mm.clusterheads
            # Store an Election-compatible record so downstream code can
            # treat both algorithms uniformly.
            result = Election(
                node_ids=mm.node_ids,
                elected_head=mm.head_choice,
                member_of=mm.head_choice,
                elector_count=np.bincount(
                    np.searchsorted(cur_ids, mm.head_choice),
                    minlength=cur_ids.size,
                )
                - np.isin(cur_ids, heads).astype(np.int64),
                clusterheads=heads,
            )
        if heads.size == cur_ids.size:
            # No aggregation possible; treat as top.
            levels.append(LevelTopology(k, cur_ids, cur_edges, election=None))
            break
        levels.append(LevelTopology(k, cur_ids, cur_edges, election=result))
        if level_mode == "radio":
            from repro.radio.unit_disk import unit_disk_edges

            head_idx = np.searchsorted(base_ids, heads)
            r_k = float(r0) * float(np.sqrt(n0 / heads.size))
            pair_idx = unit_disk_edges(pos[head_idx], r_k)
            cur_edges = (
                heads[pair_idx]
                if pair_idx.size
                else np.empty((0, 2), dtype=np.int64)
            )
        else:
            cur_edges = contract_edges(cur_edges, cur_ids, member_of)
        cur_ids = heads
        k += 1
    return ClusteredHierarchy(levels)
