"""Cluster-identity persistence — the structural fix for gamma.

EXPERIMENTS.md traces the measured super-polylog growth of gamma to one
modeling decision the paper inherits from Fig. 1: *clusters are named by
their clusterhead's ID*.  Every head replacement then renames the
cluster, which renames an address component for Theta(c_k) members and
re-keys their hashed LM servers — reorganization handoff that has
nothing to do with actual cluster geometry.

This module decouples the two: a cluster is an entity with a stable
*cluster ID (cid)* allocated at birth; the head is a replaceable role.
A cid dies only when its cluster dissolves (absorbed by a neighbor or
emptied) — head handover keeps the cid, so ancestry, addresses, and the
CHLM hash keys all survive it.

Maintenance rules per level (mirroring the LCC discipline of
:mod:`repro.clustering.alca`, but role-based):

1. **Handover.**  If a cluster's head leaves the level (its own
   lower-level cluster died), the surviving member with the largest ID
   takes over; the cid persists.
2. **Stickiness.**  A member stays while adjacent to its cluster's
   head; otherwise it rehomes to an adjacent head, or founds a new
   cluster (fresh cid) when none is in range.
3. **Merge.**  When two heads become adjacent, the *younger* (larger
   cid) cluster dissolves if all of its members can rehome; its cid
   dies (a genuine reorganization event).  Seniority rules throughout —
   rehoming prefers the oldest cid in range — because preferring young
   identities makes members chase freshly founded clusters and thrashes
   the very identities persistence is meant to stabilize.

The emitted snapshots reuse the :class:`~repro.clustering.lca.Election`
container with ``member_of`` holding cids, so the whole hierarchy /
handoff / routing stack runs unchanged on persistent identities.
EXP-A5 measures the effect on gamma.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.lca import Election
from repro.hierarchy.cluster_graph import canonical_edges
from repro.hierarchy.levels import ClusteredHierarchy, LevelTopology

__all__ = ["PersistentLevelMaintainer", "PersistentHierarchyMaintainer"]


class PersistentLevelMaintainer:
    """Stateful cluster maintenance for one level, with stable cids.

    Parameters
    ----------
    cid_start:
        First cid this level allocates.  Levels use disjoint ranges so a
        cid never collides with a physical node ID or another level's
        cids (cids also serve as node IDs one level up).
    """

    def __init__(self, cid_start: int):
        self._m2c: dict[int, int] = {}  # lower id -> cid
        self._head: dict[int, int] = {}  # cid -> lower id (the head role)
        self._next_cid = int(cid_start)

    def _new_cid(self) -> int:
        cid = self._next_cid
        self._next_cid += 1
        return cid

    @property
    def clusters(self) -> dict[int, int]:
        """Current cid -> head-id map (copy)."""
        return dict(self._head)

    def update(self, node_ids, edges) -> Election:
        """Advance this level's clustering to the new topology."""
        ids = np.unique(np.asarray(list(node_ids), dtype=np.int64))
        if ids.size == 0:
            raise ValueError("maintenance requires at least one node")
        e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        id_set = set(ids.tolist())
        adj: dict[int, set[int]] = {v: set() for v in id_set}
        for a, b in e.tolist():
            if a == b:
                raise ValueError("self-loops are not valid links")
            if a not in id_set or b not in id_set:
                raise ValueError("edges reference ids not in node_ids")
            adj[a].add(b)
            adj[b].add(a)

        m2c = {v: c for v, c in self._m2c.items() if v in id_set}
        members_of: dict[int, set[int]] = {}
        for v, c in m2c.items():
            members_of.setdefault(c, set()).add(v)

        # Rule 1: head handover / cluster death.
        head: dict[int, int] = {}
        for cid, h in self._head.items():
            members = members_of.get(cid, set())
            if not members:
                continue  # cluster emptied: cid dies
            if h in members:
                head[cid] = h
            else:
                head[cid] = max(members)  # handover, cid persists

        def heads_in_range(v: int) -> list[int]:
            return [c for c, h in head.items() if h in adj[v]]

        # Rule 2: stickiness / rehoming for surviving members.  Rehoming
        # prefers the *oldest* (smallest) cid in range: seniority is the
        # stable choice — preferring young cids makes members chase every
        # freshly founded cluster and thrashes identities.
        for v in sorted(id_set):
            cid = m2c.get(v)
            if cid is not None and cid in head:
                h = head[cid]
                if h == v or h in adj[v]:
                    continue
            near = heads_in_range(v)
            if near:
                m2c[v] = min(near)
            else:
                new = self._new_cid()
                head[new] = v
                m2c[v] = new

        # New arrivals: same seniority rule.
        for v in sorted(id_set):
            if v in m2c:
                continue
            near = heads_in_range(v)
            if near:
                m2c[v] = min(near)
            else:
                new = self._new_cid()
                head[new] = v
                m2c[v] = new

        # Rule 3: merges — the *younger* (larger) cid dissolves into an
        # adjacent senior cluster when every member can rehome.  Youngest
        # first, so cascades retire the newest identities.
        members_of = {}
        for v, c in m2c.items():
            members_of.setdefault(c, set()).add(v)
        for cid in sorted(head, reverse=True):
            if cid not in head:
                continue
            h = head[cid]
            senior_rivals = {
                c for c in heads_in_range(h)
                if c != cid and c in head and c < cid
            }
            if not senior_rivals:
                continue
            movable = all(
                any(c != cid and c in head for c in heads_in_range(m))
                for m in members_of.get(cid, set())
            )
            if not movable:
                continue
            for m in sorted(members_of.get(cid, set())):
                near = [c for c in heads_in_range(m) if c != cid and c in head]
                m2c[m] = min(near)
                members_of.setdefault(m2c[m], set()).add(m)
            del head[cid]
            members_of.pop(cid, None)

        self._m2c = m2c
        self._head = head
        return self._snapshot(ids)

    def _snapshot(self, ids: np.ndarray) -> Election:
        member_of = np.array([self._m2c[int(v)] for v in ids], dtype=np.int64)
        cids = np.unique(member_of)
        # Fig.-3-style state: the head's elector count is its membership
        # size minus itself; non-heads are 0.  (States are per lower-level
        # id so the array aligns with node_ids.)
        elector_count = np.zeros(ids.size, dtype=np.int64)
        sizes: dict[int, int] = {}
        for c in member_of.tolist():
            sizes[c] = sizes.get(c, 0) + 1
        index = {int(v): i for i, v in enumerate(ids.tolist())}
        for cid, h in self._head.items():
            if h in index:
                elector_count[index[h]] = sizes.get(cid, 1) - 1
        return Election(
            node_ids=ids,
            elected_head=member_of.copy(),
            member_of=member_of,
            elector_count=elector_count,
            clusterheads=cids,
        )

    def head_of_cid(self, cid: int) -> int | None:
        """Current head (lower-level ID) of a cid, or None if dead."""
        return self._head.get(int(cid))


class PersistentHierarchyMaintainer:
    """Multi-level hierarchy with persistent cluster identities.

    The level-k node set consists of level-k *cids* rather than head
    node IDs; positions for the radio-model level links are resolved by
    following each cid's head chain down to a physical node.

    Note: because cids are synthetic, ``ClusteredHierarchy.
    highest_level_of`` is not meaningful under this maintainer.
    """

    CID_BLOCK = 10_000_000
    """Cid range per level: level k allocates from (k+1) * CID_BLOCK.
    Physical node IDs must stay below CID_BLOCK."""

    def __init__(self, max_levels: int | None = None, r0: float | None = None):
        if r0 is None or r0 <= 0:
            raise ValueError("persistent maintenance requires a positive r0")
        self.max_levels = max_levels
        self.r0 = float(r0)
        self._levels: list[PersistentLevelMaintainer] = []

    def _level(self, k: int) -> PersistentLevelMaintainer:
        while len(self._levels) <= k:
            idx = len(self._levels)
            self._levels.append(
                PersistentLevelMaintainer(cid_start=(idx + 1) * self.CID_BLOCK)
            )
        return self._levels[k]

    def _position_of(self, level: int, node_id: int,
                     pos_lookup: dict[int, np.ndarray]) -> np.ndarray:
        """Physical position of a level-``level`` id (follow head chain)."""
        cur = int(node_id)
        for k in range(level - 1, -1, -1):
            head = self._levels[k].head_of_cid(cur)
            if head is None:
                break
            cur = head
        return pos_lookup[cur]

    def update(self, node_ids, edges, positions) -> ClusteredHierarchy:
        """Advance all levels to the new physical topology."""
        base_ids = np.unique(np.asarray(list(node_ids), dtype=np.int64))
        if base_ids.size and int(base_ids.max()) >= self.CID_BLOCK:
            raise ValueError("node IDs must be below CID_BLOCK")
        pos = np.asarray(positions, dtype=np.float64)
        if pos.shape[0] != base_ids.size:
            raise ValueError("positions must align with node_ids")
        pos_lookup = {int(v): pos[i] for i, v in enumerate(base_ids.tolist())}
        n0 = base_ids.size

        from repro.radio.unit_disk import unit_disk_edges

        cur_ids = base_ids
        cur_edges = canonical_edges(edges)
        levels: list[LevelTopology] = []
        k = 0
        while True:
            at_cap = self.max_levels is not None and k >= self.max_levels
            if at_cap or cur_ids.size <= 1 or cur_edges.shape[0] == 0:
                levels.append(LevelTopology(k, cur_ids, cur_edges, election=None))
                break
            election = self._level(k).update(cur_ids, cur_edges)
            cids = election.clusterheads
            if cids.size == cur_ids.size:
                levels.append(LevelTopology(k, cur_ids, cur_edges, election=None))
                break
            levels.append(LevelTopology(k, cur_ids, cur_edges, election=election))
            # Radio-model links between cluster head positions.
            cid_pos = np.stack([
                self._position_of(k + 1, int(c), pos_lookup) for c in cids
            ])
            r_k = self.r0 * float(np.sqrt(n0 / cids.size))
            pair_idx = unit_disk_edges(cid_pos, r_k)
            cur_edges = (
                cids[pair_idx] if pair_idx.size else np.empty((0, 2), dtype=np.int64)
            )
            cur_ids = cids
            k += 1
        return ClusteredHierarchy(levels)
