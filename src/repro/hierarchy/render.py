"""Plain-text rendering of clustered hierarchies (the Fig. 1 picture).

Console analogue of the paper's hierarchy figure: an indented tree from
the top-level clusters down to (optionally elided) level-0 members,
plus a one-line per-level summary banner.
"""

from __future__ import annotations

from repro.hierarchy.levels import ClusteredHierarchy

__all__ = ["render_hierarchy", "render_summary"]


def render_summary(h: ClusteredHierarchy) -> str:
    """One line per level: counts and arities."""
    lines = []
    prev = None
    for lvl in h.levels:
        arity = f"{prev / lvl.n_nodes:5.2f}" if prev else "    -"
        lines.append(
            f"level {lvl.k}: {lvl.n_nodes:5d} nodes, {lvl.n_edges:6d} links,"
            f" arity {arity}, mean degree {lvl.mean_degree:5.2f}"
        )
        prev = lvl.n_nodes
    return "\n".join(lines)


def render_hierarchy(
    h: ClusteredHierarchy,
    max_children: int = 8,
    show_level0: bool = True,
) -> str:
    """Indented cluster tree, top level first.

    Parameters
    ----------
    max_children:
        Elide siblings beyond this count per cluster (replaced by an
        ellipsis line with the hidden count).
    show_level0:
        Whether to print level-0 members (the leaves) or stop at level 1.
    """
    if max_children < 1:
        raise ValueError("max_children must be positive")
    lines: list[str] = []

    def walk(cluster_id: int, level: int, indent: int) -> None:
        pad = "  " * indent
        if level == 0:
            lines.append(f"{pad}* {cluster_id}")
            return
        members = h.clusters(level).get(cluster_id)
        size0 = h.members0(level, cluster_id).size
        lines.append(f"{pad}[L{level}] cluster {cluster_id} "
                     f"({size0} level-0 nodes)")
        if members is None:
            return
        if level == 1 and not show_level0:
            return
        shown = members[:max_children]
        for m in shown.tolist():
            walk(int(m), level - 1, indent + 1)
        hidden = len(members) - len(shown)
        if hidden > 0:
            lines.append(f"{'  ' * (indent + 1)}... ({hidden} more)")

    top = h.levels[-1]
    if h.num_levels == 0:
        return "\n".join(f"* {v}" for v in top.node_ids.tolist())
    for cid in top.node_ids.tolist():
        walk(int(cid), h.num_levels, 0)
    return "\n".join(lines)
