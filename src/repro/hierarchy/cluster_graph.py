"""Level-(k+1) topology from a level-k partition (edge contraction).

The paper defines E_{k+1} implicitly: two level-(k+1) nodes (clusterheads)
are linked iff their level-k clusters are adjacent, i.e. some level-k link
crosses between the two clusters.  This module contracts a canonical edge
array by a membership map in O(m log m).
"""

from __future__ import annotations

import numpy as np

__all__ = ["canonical_edges", "contract_edges"]


def canonical_edges(edges) -> np.ndarray:
    """Canonicalize an ID-pair edge array: per-row sorted, lexsorted rows,
    duplicates and self-loops removed."""
    e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if e.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    e = np.sort(e, axis=1)
    e = e[e[:, 0] != e[:, 1]]
    if e.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    e = np.unique(e, axis=0)
    return e


def contract_edges(edges, node_ids: np.ndarray, member_of: np.ndarray) -> np.ndarray:
    """Contract level-k edges into the level-(k+1) cluster graph.

    Parameters
    ----------
    edges:
        ``(m, 2)`` level-k edges as ID pairs.
    node_ids:
        Sorted level-k node IDs.
    member_of:
        Cluster affiliation aligned with ``node_ids`` (head IDs).

    Returns
    -------
    Canonical ``(m', 2)`` array of head-ID pairs: one edge per adjacent
    cluster pair.
    """
    e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if e.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    ui = np.searchsorted(node_ids, e[:, 0])
    vi = np.searchsorted(node_ids, e[:, 1])
    if (
        np.any(ui >= node_ids.size)
        or np.any(vi >= node_ids.size)
        or np.any(node_ids[ui] != e[:, 0])
        or np.any(node_ids[vi] != e[:, 1])
    ):
        raise ValueError("edges reference ids not in node_ids")
    heads = np.stack([member_of[ui], member_of[vi]], axis=1)
    return canonical_edges(heads)
