"""Analysis layer: closed-form theory, shape fitting, scaling sweeps."""

from repro.analysis.fitting import (
    SHAPES,
    ShapeFit,
    compare_shapes,
    fit_power,
    fit_shape,
    flatness,
    shape_by_flatness,
)
from repro.analysis.parallel import parallel_sweep
from repro.analysis.report import generate_report
from repro.analysis.scaling import SweepPoint, sweep
from repro.analysis.theory import (
    edges_per_node_prediction,
    expected_levels,
    f0_prediction,
    f_k_prediction,
    g_prime_k_prediction,
    gamma_k_prediction,
    hop_count_level,
    hop_count_network,
    levels_for,
    migration_distance,
    phi_k_prediction,
    phi_total_prediction,
)

__all__ = [
    "SHAPES",
    "ShapeFit",
    "compare_shapes",
    "fit_power",
    "fit_shape",
    "flatness",
    "shape_by_flatness",
    "SweepPoint",
    "sweep",
    "parallel_sweep",
    "generate_report",
    "edges_per_node_prediction",
    "expected_levels",
    "f0_prediction",
    "f_k_prediction",
    "g_prime_k_prediction",
    "gamma_k_prediction",
    "hop_count_level",
    "hop_count_network",
    "levels_for",
    "migration_distance",
    "phi_k_prediction",
    "phi_total_prediction",
]
