"""Multi-seed scaling sweeps.

The experiments all share one loop: run the simulator over a grid of
node counts and seeds, aggregate per-n means and standard deviations of
some result metric, and fit shapes.  This module owns that loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.sim.engine import run_scenario
from repro.sim.metrics import SimResult
from repro.sim.scenario import Scenario

__all__ = ["SweepPoint", "sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated results at one node count."""

    n: int
    values: dict[str, float]
    stds: dict[str, float]
    seeds: int
    results: tuple[SimResult, ...]

    def __getitem__(self, key: str) -> float:
        return self.values[key]


def sweep(
    ns,
    base: Scenario,
    metrics: dict[str, Callable[[SimResult], float]],
    seeds=(0, 1),
    scenario_for: Callable[[Scenario, int], Scenario] | None = None,
    hop_sample_every: int | None = None,
    keep_results: bool = False,
) -> list[SweepPoint]:
    """Run the scenario across node counts and seeds.

    Parameters
    ----------
    ns:
        Node counts to sweep.
    base:
        Template scenario; ``n`` and ``seed`` are overridden per run.
    metrics:
        Named extractors applied to each :class:`SimResult`.
    seeds:
        Seeds averaged at each point.
    scenario_for:
        Optional hook ``(scenario, n) -> scenario`` applied after setting
        ``n`` (e.g. to scale ``max_levels`` with log n).
    keep_results:
        Retain the raw SimResults on each point (memory-heavy).
    """
    if not metrics:
        raise ValueError("need at least one metric")
    points = []
    for n in ns:
        sc_n = replace(base, n=int(n))
        if scenario_for is not None:
            sc_n = scenario_for(sc_n, int(n))
        samples: dict[str, list[float]] = {name: [] for name in metrics}
        kept = []
        for seed in seeds:
            res = run_scenario(
                replace(sc_n, seed=int(seed)), hop_sample_every=hop_sample_every
            )
            for name, fn in metrics.items():
                samples[name].append(float(fn(res)))
            if keep_results:
                kept.append(res)
        points.append(
            SweepPoint(
                n=int(n),
                values={k: float(np.mean(v)) for k, v in samples.items()},
                stds={k: float(np.std(v)) for k, v in samples.items()},
                seeds=len(list(seeds)),
                results=tuple(kept),
            )
        )
    return points
