"""Scaling-shape fits.

The reproduction cannot assert asymptotics from finite runs; instead each
scaling experiment fits the measured curve against the paper's predicted
shape *and* the competing shapes (sqrt, linear, plain log), then compares
residuals.  "The paper's shape wins the model comparison" is the
reproducible statement EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ShapeFit", "fit_shape", "compare_shapes", "fit_power", "flatness", "shape_by_flatness", "SHAPES"]


def _g_log2(x):
    return np.log(x) ** 2


def _g_log(x):
    return np.log(x)


def _g_sqrt(x):
    return np.sqrt(x)


def _g_linear(x):
    return np.asarray(x, dtype=np.float64)


def _g_const(x):
    return np.ones_like(np.asarray(x, dtype=np.float64))


def _g_inv_sqrt(x):
    return 1.0 / np.sqrt(x)


SHAPES = {
    "log2": _g_log2,
    "log": _g_log,
    "sqrt": _g_sqrt,
    "linear": _g_linear,
    "const": _g_const,
    "inv_sqrt": _g_inv_sqrt,
}


@dataclass(frozen=True)
class ShapeFit:
    """Least-squares fit of y = a * g(x) + b."""

    shape: str
    a: float
    b: float
    sse: float
    r2: float
    aic: float

    def predict(self, x) -> np.ndarray:
        """Evaluate the fitted curve a * g(x) + b at ``x``."""
        return self.a * SHAPES[self.shape](np.asarray(x, dtype=np.float64)) + self.b


def fit_shape(x, y, shape: str) -> ShapeFit:
    """Fit ``y = a * g(x) + b`` by ordinary least squares.

    ``shape`` is a key of :data:`SHAPES`.  Requires at least 3 points and
    positive x (the shapes involve log/sqrt).
    """
    if shape not in SHAPES:
        raise ValueError(f"unknown shape {shape!r}; known: {sorted(SHAPES)}")
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError("x and y must be equal-length 1-D arrays")
    if xa.size < 3:
        raise ValueError("need at least 3 points to fit and compare")
    if np.any(xa <= 0):
        raise ValueError("x values must be positive")
    g = SHAPES[shape](xa)
    if shape == "const":
        a, b = 0.0, float(ya.mean())
        pred = np.full_like(ya, b)
    else:
        design = np.stack([g, np.ones_like(g)], axis=1)
        coef, *_ = np.linalg.lstsq(design, ya, rcond=None)
        a, b = float(coef[0]), float(coef[1])
        pred = a * g + b
    resid = ya - pred
    sse = float(resid @ resid)
    tss = float(((ya - ya.mean()) ** 2).sum())
    r2 = 1.0 - sse / tss if tss > 0 else 1.0
    n = xa.size
    k_params = 1 if shape == "const" else 2
    # Gaussian-likelihood AIC; the +1e-300 floor guards exact fits.
    aic = n * np.log(sse / n + 1e-300) + 2 * k_params
    return ShapeFit(shape=shape, a=a, b=b, sse=sse, r2=r2, aic=float(aic))


def compare_shapes(x, y, shapes=("log2", "sqrt", "log", "linear")) -> list[ShapeFit]:
    """Fit several shapes; return fits sorted by AIC (best first)."""
    fits = [fit_shape(x, y, s) for s in shapes]
    return sorted(fits, key=lambda f: f.aic)


def flatness(x, y, shape: str) -> float:
    """Coefficient of variation of ``y / g(x)`` — 0 means y is exactly
    proportional to the shape.

    More robust than AIC fits for *staircase* data: with L = Theta(log n)
    integer levels, overhead curves are flat within an L-plateau and jump
    at L increments; the normalized ratio stays bounded for the true
    shape but drifts monotonically for the wrong one.
    """
    if shape not in SHAPES:
        raise ValueError(f"unknown shape {shape!r}; known: {sorted(SHAPES)}")
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if np.any(xa <= 0):
        raise ValueError("x values must be positive")
    ratio = ya / SHAPES[shape](xa)
    m = ratio.mean()
    if m == 0:
        return float("inf")
    return float(ratio.std() / abs(m))


def shape_by_flatness(x, y, shapes=("log2", "sqrt", "log", "linear")) -> list[tuple[str, float]]:
    """Rank shapes by normalized-ratio flatness (best first)."""
    scored = [(s, flatness(x, y, s)) for s in shapes]
    return sorted(scored, key=lambda t: t[1])


def fit_power(x, y) -> tuple[float, float]:
    """Log-log regression ``y ~ C * x^p``; returns (p, C).

    A polylog curve fits with small p (drifting toward 0 as x grows);
    sqrt growth gives p ~ 0.5, linear p ~ 1.  Useful as a single-number
    summary next to the shape comparison.
    """
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if np.any(xa <= 0) or np.any(ya <= 0):
        raise ValueError("power fit requires positive data")
    if xa.size < 2:
        raise ValueError("need at least 2 points")
    lx, ly = np.log(xa), np.log(ya)
    p, logc = np.polyfit(lx, ly, 1)
    return float(p), float(np.exp(logc))
