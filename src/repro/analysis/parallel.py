"""Process-parallel scaling sweeps.

Wide-grid experiments multiply node counts by seeds; the runs are
embarrassingly parallel (independent scenarios), so this module fans
them out over a ``ProcessPoolExecutor``.  Results come back in
deterministic order regardless of completion order, and the output is
bit-identical to the serial :func:`repro.analysis.scaling.sweep` for the
same scenario grid (each run is seeded independently).

The worker function is module-level so it pickles under the default
``fork``/``spawn`` start methods.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Callable

import numpy as np

from repro.analysis.scaling import SweepPoint
from repro.sim.engine import run_scenario
from repro.sim.metrics import SimResult
from repro.sim.scenario import Scenario

__all__ = ["parallel_sweep", "run_one"]


def run_one(args: tuple[Scenario, int | None, int]) -> SimResult:
    """Worker: run one (scenario, n, seed) combination."""
    scenario, hop_sample_every, seed = args
    return run_scenario(
        replace(scenario, seed=int(seed)), hop_sample_every=hop_sample_every
    )


def parallel_sweep(
    ns,
    base: Scenario,
    metrics: dict[str, Callable[[SimResult], float]],
    seeds=(0, 1),
    scenario_for: Callable[[Scenario, int], Scenario] | None = None,
    hop_sample_every: int | None = None,
    max_workers: int | None = None,
) -> list[SweepPoint]:
    """Parallel counterpart of :func:`repro.analysis.scaling.sweep`.

    Parameters mirror the serial version; ``max_workers`` bounds the
    process pool (None = CPU count).  Raw results are not retained
    (they'd be shipped across process boundaries wholesale).
    """
    if not metrics:
        raise ValueError("need at least one metric")
    seeds = list(seeds)
    jobs: list[tuple[Scenario, int, int]] = []
    for n in ns:
        sc_n = replace(base, n=int(n))
        if scenario_for is not None:
            sc_n = scenario_for(sc_n, int(n))
        for seed in seeds:
            jobs.append((sc_n, hop_sample_every, seed))

    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        results = list(pool.map(run_one, jobs))

    points = []
    per_n = len(seeds)
    for i, n in enumerate(ns):
        chunk = results[i * per_n : (i + 1) * per_n]
        samples = {
            name: [float(fn(res)) for res in chunk] for name, fn in metrics.items()
        }
        points.append(
            SweepPoint(
                n=int(n),
                values={k: float(np.mean(v)) for k, v in samples.items()},
                stds={k: float(np.std(v)) for k, v in samples.items()},
                seeds=per_n,
                results=(),
            )
        )
    return points
