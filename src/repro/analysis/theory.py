"""Closed-form predictions from the paper's equations.

Every Theta(.) claim in Sections 1-5 has a corresponding function here
(up to the hidden constant, which callers fit from data).  The
experiments print these beside measured values so paper-vs-measured
shape comparisons are mechanical.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hop_count_network",
    "hop_count_level",
    "migration_distance",
    "f0_prediction",
    "f_k_prediction",
    "phi_k_prediction",
    "phi_total_prediction",
    "gamma_k_prediction",
    "g_prime_k_prediction",
    "edges_per_node_prediction",
    "expected_levels",
    "levels_for",
]


def hop_count_network(n, coeff: float = 1.0) -> np.ndarray:
    """h = Theta(sqrt(|V|)) — Kleinrock-Silvester [2] (Section 1.2)."""
    return coeff * np.sqrt(np.asarray(n, dtype=np.float64))


def hop_count_level(c_k, coeff: float = 1.0) -> np.ndarray:
    """h_k = Theta(sqrt(c_k)) — Eq. (3)."""
    return coeff * np.sqrt(np.asarray(c_k, dtype=np.float64))


def migration_distance(r_tx: float, c_k, coeff: float = 1.0) -> np.ndarray:
    """delta_k = Theta(R_tx * sqrt(c_k)) — Eq. (7): the relative distance
    a node must cover to leave its level-k cluster."""
    if r_tx <= 0:
        raise ValueError("transmission radius must be positive")
    return coeff * r_tx * np.sqrt(np.asarray(c_k, dtype=np.float64))


def f0_prediction(mu: float, r_tx: float, coeff: float = 1.0) -> float:
    """f_0 = Theta(mu / R_tx) = Theta(1) in |V| — Eq. (4)."""
    if mu < 0 or r_tx <= 0:
        raise ValueError("invalid speed or radius")
    return coeff * mu / r_tx


def f_k_prediction(f0: float, h_k, coeff: float = 1.0) -> np.ndarray:
    """f_k = Theta(f_0 / h_k) — Eqs. (8)-(9)."""
    h = np.asarray(h_k, dtype=np.float64)
    if np.any(h <= 0):
        raise ValueError("hop counts must be positive")
    return coeff * f0 / h


def phi_k_prediction(f_k, h_k, n: int, coeff: float = 1.0) -> np.ndarray:
    """phi_k = Theta(f_k * h_k * log|V|) — Eq. (6a).

    Under Eq. (9) this collapses to Theta(log|V|) per level.
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    return coeff * np.asarray(f_k) * np.asarray(h_k) * np.log(n)


def phi_total_prediction(n, coeff: float = 1.0) -> np.ndarray:
    """phi = O(log^2 |V|) — Eq. (6c) with the Section 4 condition met."""
    v = np.asarray(n, dtype=np.float64)
    return coeff * np.log(v) ** 2


def gamma_k_prediction(g_k, c_k, h_k, n: int, coeff: float = 1.0) -> np.ndarray:
    """gamma_k = Theta(g_k * c_k * h_k * log|V|) — Eq. (10a)."""
    if n < 2:
        raise ValueError("need at least two nodes")
    return (
        coeff
        * np.asarray(g_k)
        * np.asarray(c_k)
        * np.asarray(h_k)
        * np.log(n)
    )


def g_prime_k_prediction(h_k, coeff: float = 1.0) -> np.ndarray:
    """g'_k = O(1/h_k) — Eq. (14): per-cluster-link change frequency."""
    h = np.asarray(h_k, dtype=np.float64)
    if np.any(h <= 0):
        raise ValueError("hop counts must be positive")
    return coeff / h


def edges_per_node_prediction(d_k, c_k) -> np.ndarray:
    """|E_k| / |V| = d_k / (2 c_k) — Eq. (13b)."""
    return np.asarray(d_k, dtype=np.float64) / (2.0 * np.asarray(c_k, dtype=np.float64))


def expected_levels(n: int, alpha: float) -> float:
    """L = log |V| / log alpha for constant arity alpha (Eq. 2b)."""
    if n < 2 or alpha <= 1:
        raise ValueError("need n >= 2 and alpha > 1")
    return float(np.log(n) / np.log(alpha))


def levels_for(n: int, alpha: float = 6.0, minimum: int = 2) -> int:
    """Integer hierarchy depth used by the experiment sweeps:
    L(n) = max(minimum, round(log n / log alpha)).

    This realizes the paper's "desired number of cluster levels"
    (Section 2.1) with L = Theta(log |V|).
    """
    return max(minimum, round(expected_levels(n, alpha)))
