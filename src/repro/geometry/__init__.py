"""Two-dimensional geometry substrate.

The paper assumes nodes placed by a two-dimensional uniform random
distribution over a circular region whose area grows proportionally with
the node count so that *density stays fixed* (Section 1.2).  This package
provides the deployment regions, uniform samplers, and vectorized distance
kernels used by every other subsystem.
"""

from repro.geometry.region import (
    DeploymentRegion,
    DiscRegion,
    SquareRegion,
    disc_for_density,
    square_for_density,
)
from repro.geometry.points import (
    as_points,
    bounding_box,
    centroid,
    pairwise_distances,
    distances_to,
    displacement,
    path_length,
)

__all__ = [
    "DeploymentRegion",
    "DiscRegion",
    "SquareRegion",
    "disc_for_density",
    "square_for_density",
    "as_points",
    "bounding_box",
    "centroid",
    "pairwise_distances",
    "distances_to",
    "displacement",
    "path_length",
]
