"""Deployment regions.

The paper's model (Section 1.2): nodes uniform over a *circular* area that
scales with the node count so average density is constant.  The GLS
baseline (Section 3.1) instead overlays a *square* grid hierarchy, so a
square region is provided as well.  Both expose the same interface:

``sample(n, rng)``
    n points uniform over the region,
``contains(points)``
    boolean membership mask,
``clamp(points)``
    project points back inside (used defensively by mobility models),
``area``
    region area.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.geometry.points import as_points


class DeploymentRegion(ABC):
    """Abstract 2-D deployment region."""

    @property
    @abstractmethod
    def area(self) -> float:
        """Region area in m^2."""

    @property
    @abstractmethod
    def center(self) -> np.ndarray:
        """Region center, shape ``(2,)``."""

    @property
    @abstractmethod
    def diameter(self) -> float:
        """Largest distance between two points of the region."""

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` points uniformly at random from the region."""

    @abstractmethod
    def contains(self, points) -> np.ndarray:
        """Boolean mask of which points lie inside the region."""

    @abstractmethod
    def clamp(self, points) -> np.ndarray:
        """Project points onto the region (identity for interior points)."""

    def density_for(self, n: int) -> float:
        """Node density if ``n`` nodes are deployed in this region."""
        if n < 0:
            raise ValueError("node count must be non-negative")
        return n / self.area


class DiscRegion(DeploymentRegion):
    """Circular region of radius ``radius`` centred at ``center``.

    This is the paper's deployment area.  Uniform sampling uses the
    sqrt-radius transform so points are uniform in *area*, not in radius.
    """

    def __init__(self, radius: float, center=(0.0, 0.0)):
        if radius <= 0:
            raise ValueError("radius must be positive")
        self._radius = float(radius)
        self._center = np.asarray(center, dtype=np.float64).reshape(2)

    @property
    def radius(self) -> float:
        return self._radius

    @property
    def center(self) -> np.ndarray:
        return self._center.copy()

    @property
    def area(self) -> float:
        return float(np.pi * self._radius**2)

    @property
    def diameter(self) -> float:
        return 2.0 * self._radius

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError("sample size must be non-negative")
        r = self._radius * np.sqrt(rng.random(n))
        theta = rng.random(n) * (2.0 * np.pi)
        pts = np.empty((n, 2), dtype=np.float64)
        pts[:, 0] = r * np.cos(theta)
        pts[:, 1] = r * np.sin(theta)
        pts += self._center
        return pts

    def contains(self, points) -> np.ndarray:
        pts = as_points(points) - self._center
        return np.einsum("ij,ij->i", pts, pts) <= self._radius**2 * (1 + 1e-12)

    def clamp(self, points) -> np.ndarray:
        pts = as_points(points).copy()
        rel = pts - self._center
        dist = np.sqrt(np.einsum("ij,ij->i", rel, rel))
        outside = dist > self._radius
        if np.any(outside):
            scale = self._radius / dist[outside]
            pts[outside] = self._center + rel[outside] * scale[:, np.newaxis]
        return pts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiscRegion(radius={self._radius:g}, center={tuple(self._center)})"


class SquareRegion(DeploymentRegion):
    """Axis-aligned square region ``[x0, x0+side] x [y0, y0+side]``.

    Used by the GLS grid hierarchy, which recursively quarters a square
    (Fig. 2 of the paper).
    """

    def __init__(self, side: float, origin=(0.0, 0.0)):
        if side <= 0:
            raise ValueError("side must be positive")
        self._side = float(side)
        self._origin = np.asarray(origin, dtype=np.float64).reshape(2)

    @property
    def side(self) -> float:
        return self._side

    @property
    def origin(self) -> np.ndarray:
        return self._origin.copy()

    @property
    def center(self) -> np.ndarray:
        return self._origin + self._side / 2.0

    @property
    def area(self) -> float:
        return self._side**2

    @property
    def diameter(self) -> float:
        return float(self._side * np.sqrt(2.0))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError("sample size must be non-negative")
        return self._origin + rng.random((n, 2)) * self._side

    def contains(self, points) -> np.ndarray:
        pts = as_points(points) - self._origin
        eps = self._side * 1e-12
        return np.all((pts >= -eps) & (pts <= self._side + eps), axis=1)

    def clamp(self, points) -> np.ndarray:
        pts = as_points(points)
        lo = self._origin
        hi = self._origin + self._side
        return np.clip(pts, lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SquareRegion(side={self._side:g}, origin={tuple(self._origin)})"


def disc_for_density(n: int, density: float, center=(0.0, 0.0)) -> DiscRegion:
    """Disc sized so that ``n`` nodes give the requested ``density``.

    This realizes the paper's fixed-density scaling: area = n / density,
    hence the radius grows as Θ(sqrt(n)).
    """
    if n <= 0:
        raise ValueError("node count must be positive")
    if density <= 0:
        raise ValueError("density must be positive")
    area = n / density
    return DiscRegion(radius=float(np.sqrt(area / np.pi)), center=center)


def square_for_density(n: int, density: float, origin=(0.0, 0.0)) -> SquareRegion:
    """Square sized so that ``n`` nodes give the requested ``density``."""
    if n <= 0:
        raise ValueError("node count must be positive")
    if density <= 0:
        raise ValueError("density must be positive")
    area = n / density
    return SquareRegion(side=float(np.sqrt(area)), origin=origin)
