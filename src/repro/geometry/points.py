"""Vectorized point-set helpers.

All functions accept array-likes of shape ``(n, 2)`` (or ``(2,)`` for a
single point) and avoid Python-level loops; the hot paths of the simulator
(mobility stepping, link detection) call these every step.
"""

from __future__ import annotations

import numpy as np


def as_points(xy) -> np.ndarray:
    """Coerce ``xy`` to a float64 array of shape ``(n, 2)``.

    A single point of shape ``(2,)`` is promoted to ``(1, 2)``.

    Raises
    ------
    ValueError
        If the input cannot be interpreted as 2-D points.
    """
    pts = np.asarray(xy, dtype=np.float64)
    if pts.ndim == 1:
        if pts.shape[0] != 2:
            raise ValueError(f"expected a 2-vector, got shape {pts.shape}")
        pts = pts[np.newaxis, :]
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got shape {pts.shape}")
    return pts


def pairwise_distances(points) -> np.ndarray:
    """Full ``(n, n)`` Euclidean distance matrix.

    Quadratic in memory; intended for analysis on modest point sets.  The
    radio package uses a k-d tree instead for neighbor queries.
    """
    pts = as_points(points)
    diff = pts[:, np.newaxis, :] - pts[np.newaxis, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def distances_to(points, target) -> np.ndarray:
    """Euclidean distance from each point to a single ``target`` point."""
    pts = as_points(points)
    tgt = np.asarray(target, dtype=np.float64).reshape(2)
    diff = pts - tgt
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def displacement(before, after) -> np.ndarray:
    """Per-point Euclidean displacement between two snapshots."""
    a = as_points(before)
    b = as_points(after)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    diff = b - a
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def centroid(points) -> np.ndarray:
    """Arithmetic mean of the point set, shape ``(2,)``."""
    pts = as_points(points)
    if pts.shape[0] == 0:
        raise ValueError("centroid of an empty point set is undefined")
    return pts.mean(axis=0)


def bounding_box(points) -> tuple[np.ndarray, np.ndarray]:
    """Axis-aligned bounding box ``(lower, upper)`` of the point set."""
    pts = as_points(points)
    if pts.shape[0] == 0:
        raise ValueError("bounding box of an empty point set is undefined")
    return pts.min(axis=0), pts.max(axis=0)


def path_length(points) -> float:
    """Total polyline length visiting the points in order."""
    pts = as_points(points)
    if pts.shape[0] < 2:
        return 0.0
    seg = np.diff(pts, axis=0)
    return float(np.sqrt(np.einsum("ij,ij->i", seg, seg)).sum())
