"""Named scenario presets.

Curated parameterizations for common study regimes, so examples, docs,
and the CLI can say ``--preset vehicular`` instead of repeating numbers.
Each preset is a plain kwargs dict applied over :class:`Scenario`
defaults; explicit keyword arguments always win.
"""

from __future__ import annotations

from repro.sim.scenario import Scenario

__all__ = ["PRESETS", "make_scenario"]

PRESETS: dict[str, dict] = {
    # The paper's reference regime: pedestrian speed, fixed density,
    # degree 9, RWP with zero pause.
    "paper-default": dict(
        speed=1.0, density=0.02, target_degree=9.0,
        mobility="random_waypoint", dt=1.0,
    ),
    # Campus / pedestrian crowd: slower, denser, smoother motion.
    "campus": dict(
        speed=(0.5, 1.5), density=0.05, target_degree=8.0,
        mobility="gauss_markov",
        mobility_kwargs={"memory": 0.9, "heading_sigma": 0.4},
        dt=1.0,
    ),
    # Vehicular-slow convoy regime: fast, sparse, strongly correlated.
    "vehicular": dict(
        speed=(8.0, 14.0), density=0.005, target_degree=10.0,
        mobility="gauss_markov",
        mobility_kwargs={"memory": 0.95, "heading_sigma": 0.2},
        dt=0.5,
    ),
    # Disaster-relief squads (the HSR/MMWN motivation).
    "squads": dict(
        speed=2.0, density=0.02, target_degree=9.0,
        mobility="group",
        mobility_kwargs={"n_groups": 10, "group_radius": 25.0,
                         "jitter_speed": 0.3},
        dt=1.0,
    ),
    # Static sensor field with occasional node failure.
    "sensor-field": dict(
        mobility="stationary", density=0.03, target_degree=8.0,
        failure_rate=0.002, repair_time=30.0, dt=1.0,
    ),
}


def make_scenario(preset: str, **overrides) -> Scenario:
    """Build a :class:`Scenario` from a preset plus overrides.

    Raises
    ------
    ValueError
        For an unknown preset name (the message lists the options).
    """
    try:
        base = PRESETS[preset]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ValueError(f"unknown preset {preset!r}; known: {known}") from None
    kwargs = dict(base)
    kwargs.update(overrides)
    return Scenario(**kwargs)
