"""Result containers for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clustering.state import StateStats
from repro.core.accounting import OverheadLedger
from repro.sim.scenario import Scenario

__all__ = ["LevelSeries", "SimResult"]


@dataclass
class LevelSeries:
    """Per-level accumulators across metered steps."""

    sizes: dict[int, list[int]] = field(default_factory=dict)
    edge_counts: dict[int, list[int]] = field(default_factory=dict)
    link_events: dict[int, int] = field(default_factory=dict)
    drift_link_events: dict[int, int] = field(default_factory=dict)
    """Link events whose endpoints persist at the level in both snapshots
    — the 'cluster migration' changes of Section 5.3.1.  The remainder of
    ``link_events`` is election/rejection churn (Section 5.3.2)."""
    address_changes: dict[int, int] = field(default_factory=dict)
    """Per level k: count of node-steps where the level-k address
    component (ancestry) changed — the raw staleness driver for level-k
    LM entries."""

    def record_level(self, k: int, n_nodes: int, n_edges: int) -> None:
        """Record one step's size and link count for level ``k``."""
        self.sizes.setdefault(k, []).append(n_nodes)
        self.edge_counts.setdefault(k, []).append(n_edges)

    def add_link_events(self, k: int, count: int, drift_count: int = 0) -> None:
        """Accumulate level-k link change events (and the drift subset)."""
        self.link_events[k] = self.link_events.get(k, 0) + count
        self.drift_link_events[k] = self.drift_link_events.get(k, 0) + drift_count

    def add_address_changes(self, k: int, count: int) -> None:
        """Accumulate level-k address-component change counts."""
        self.address_changes[k] = self.address_changes.get(k, 0) + count

    def mean_size(self, k: int) -> float:
        """Mean node count of level ``k`` over the metered steps."""
        return float(np.mean(self.sizes[k])) if k in self.sizes else 0.0

    def mean_edges(self, k: int) -> float:
        """Mean link count of level ``k`` over the metered steps."""
        return float(np.mean(self.edge_counts[k])) if k in self.edge_counts else 0.0

    def levels(self) -> list[int]:
        """Sorted level indices with recorded data."""
        return sorted(self.sizes)


@dataclass
class SimResult:
    """Everything a benchmark needs from one run.

    Attributes
    ----------
    scenario:
        The configuration that produced this result.
    ledger:
        Handoff/registration overhead totals (phi, gamma, rates).
    f0:
        Measured level-0 link state change frequency per node per second
        (Eq. 4's quantity).
    level_series:
        Per-level size/edge/link-event accumulators.
    state_stats:
        ALCA state statistics per election level (key j = level whose
        election was observed; p_j estimates for Eq. 15-22).
    h_network:
        Mean shortest-path hop count samples (network-wide h).
    h_levels:
        h_k samples per level: {k: [sample, ...]}.
    mean_degree:
        Mean level-0 degree over metered steps.
    giant_fraction:
        Mean largest-component fraction over sampled steps.
    elapsed:
        Metered simulated seconds.
    """

    scenario: Scenario
    ledger: OverheadLedger
    f0: float
    level_series: LevelSeries
    state_stats: dict[int, StateStats]
    h_network: list[float]
    h_levels: dict[int, list[float]]
    mean_degree: float
    giant_fraction: float
    elapsed: float
    trace: "object | None" = None
    """Optional :class:`~repro.sim.trace.EventTrace` (set when the
    simulator ran with ``trace=True``)."""
    final_positions: np.ndarray | None = None
    """Node positions at the last metered step — lets post-run analyses
    (e.g. EXP-T10's query-cost probe) rebuild the final topology from a
    cached result without re-simulating."""
    queries: "object | None" = None
    """Optional :class:`~repro.faults.fallback.QueryLedger` (set when the
    scenario sampled queries via ``queries_per_step > 0``)."""
    timings: "object | None" = None
    """Optional :class:`~repro.obs.timers.StepTimings` with per-phase
    wall-clock totals (set when the simulator ran with ``profile=True``;
    observation only — all metric series are unaffected)."""
    extras: dict = field(default_factory=dict)
    """Outputs of custom collectors (see :mod:`repro.sim.collectors`):
    ``finalize()`` keys that don't name a SimResult field land here, and
    a non-dict return is stored under the collector's ``name``."""

    # -- convenience views -------------------------------------------------------

    @property
    def phi(self) -> float:
        return self.ledger.phi

    @property
    def gamma(self) -> float:
        return self.ledger.gamma

    @property
    def handoff_rate(self) -> float:
        return self.ledger.handoff_rate

    @property
    def query_success_rate(self) -> float | None:
        """Fraction of sampled queries resolved (None when the scenario
        sampled no queries)."""
        if self.queries is None:
            return None
        return self.queries.success_rate

    def mean_h(self) -> float:
        """Mean of the sampled network-wide hop counts."""
        return float(np.mean(self.h_network)) if self.h_network else 0.0

    def mean_h_k(self) -> dict[int, float]:
        """Mean sampled h_k per level (levels with samples only)."""
        return {k: float(np.mean(v)) for k, v in sorted(self.h_levels.items()) if v}

    def g_prime_k(self) -> dict[int, float]:
        """Measured per-cluster-link state change frequency (Eq. 14's
        g'_k): events per level-k link per second."""
        out = {}
        for k, events in sorted(self.level_series.link_events.items()):
            mean_links = self.level_series.mean_edges(k)
            if mean_links > 0 and self.elapsed > 0:
                out[k] = events / (mean_links * self.elapsed)
        return out

    def g_prime_k_drift(self) -> dict[int, float]:
        """Drift-only per-link change frequency: link events between
        *persisting* level-k nodes (Section 5.3.1's cluster migration).
        This is the quantity the paper's Theta(1/h_k) argument models;
        election-churn link events are excluded."""
        out = {}
        for k, events in sorted(self.level_series.drift_link_events.items()):
            mean_links = self.level_series.mean_edges(k)
            if mean_links > 0 and self.elapsed > 0:
                out[k] = events / (mean_links * self.elapsed)
        return out

    def g_k(self) -> dict[int, float]:
        """Level-k link state change frequency per node per second."""
        out = {}
        for k, events in sorted(self.level_series.link_events.items()):
            if self.elapsed > 0:
                out[k] = events / (self.scenario.n * self.elapsed)
        return out

    def component_lifetimes(self) -> dict[int, float]:
        """Mean lifetime (seconds) of a node's level-k address component.

        The reciprocal of the per-node component change frequency;
        feature (c) of GLS/CHLM rests on this growing with k (far
        servers need rare updates).  Levels with no observed change
        report ``inf``.
        """
        out: dict[int, float] = {}
        n = self.scenario.n
        for k, changes in sorted(self.level_series.address_changes.items()):
            if changes > 0:
                out[k] = self.elapsed * n / changes
            else:
                out[k] = float("inf")
        return out

    def staleness_fraction(self, update_lag: float | None = None) -> dict[int, float]:
        """Fraction of time a level-k LM entry is stale given a fixed
        propagation/update lag (default: one simulation step)."""
        lag = self.scenario.dt if update_lag is None else update_lag
        if lag <= 0:
            raise ValueError("update lag must be positive")
        return {
            k: min(lag / t, 1.0) if t > 0 else 1.0
            for k, t in self.component_lifetimes().items()
        }

    def p_levels(self) -> list[float]:
        """p_j vector for the Eq. (15)-(22) recursion quantities."""
        if not self.state_stats:
            return []
        max_j = max(self.state_stats)
        return [
            self.state_stats[j].p_state1 if j in self.state_stats else 0.0
            for j in range(max_j + 1)
        ]
