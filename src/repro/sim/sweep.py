"""Process-parallel sweep runner with scenario-hash result caching.

Every experiment runs the same outer loop: a grid of
:class:`~repro.sim.scenario.Scenario` specs (sizes x seeds), one
independent simulation per spec.  This module owns that loop at
production scale:

* **Grid expansion** (:func:`expand_grid`) builds the scenario list from
  a base scenario, a size axis, and a seed axis, spawning deterministic
  per-task seeds — the task list is a pure function of its inputs.
* **Parallel execution** (:func:`run_sweep`) fans tasks over a
  ``ProcessPoolExecutor``, streams completions back through a progress
  callback, and returns results in task order — bit-identical to a
  serial loop over the same scenarios (each run is independently
  seeded; no shared mutable state crosses the process boundary).
* **Result caching**: completed runs are memoized on disk, keyed by a
  stable SHA-256 of the scenario dataclass, the sampling cadence, and
  :data:`CODE_VERSION`.  Re-running an experiment or benchmark reuses
  finished simulations; bump ``CODE_VERSION`` whenever simulator
  semantics change so stale artifacts can never be replayed.

Caching is opt-in (``cache_dir=...`` or ``REPRO_SWEEP_CACHE=1`` for the
default location) so tests and one-off runs stay side-effect free.
Workers default to serial in-process execution unless
``REPRO_SWEEP_WORKERS`` or an explicit ``workers=`` says otherwise —
spawn overhead only pays off on wide grids.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.sim.engine import run_scenario
from repro.sim.metrics import SimResult
from repro.sim.scenario import Scenario

__all__ = [
    "CODE_VERSION",
    "SweepProgress",
    "scenario_key",
    "default_cache_dir",
    "expand_grid",
    "run_sweep",
    "cached_sweep",
    "parallel_map",
    "print_progress",
]

CODE_VERSION = "1"
"""Simulator-semantics version baked into every cache key.  Bump this
whenever a change alters what :func:`repro.sim.engine.run_scenario`
returns for a given scenario; old cache entries then miss cleanly."""


# -- cache keys ---------------------------------------------------------------------


def scenario_key(scenario: Scenario, hop_sample_every: int = 1000) -> str:
    """Stable SHA-256 cache key for one (scenario, sampling-cadence) run.

    The key covers every scenario field (via a sorted JSON dump of the
    dataclass), the hop-sampling cadence, and :data:`CODE_VERSION` —
    everything that determines the resulting
    :class:`~repro.sim.metrics.SimResult`.
    """
    spec = dataclasses.asdict(scenario)
    payload = json.dumps(
        {
            "scenario": spec,
            "hop_sample_every": int(hop_sample_every),
            "code_version": CODE_VERSION,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweeps"


def _cache_load(path: Path) -> SimResult | None:
    try:
        with path.open("rb") as fh:
            res = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None
    return res if isinstance(res, SimResult) else None


def _cache_store(path: Path, res: SimResult) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp-{os.getpid()}")
    with tmp.open("wb") as fh:
        pickle.dump(res, fh, protocol=pickle.HIGHEST_PROTOCOL)
    tmp.replace(path)  # atomic: concurrent sweeps never see partial files


# -- grid expansion -----------------------------------------------------------------


def expand_grid(
    base: Scenario,
    ns: Sequence[int] | None = None,
    seeds: Sequence[int] = (0, 1),
    scenario_for: Callable[[Scenario, int], Scenario] | None = None,
) -> list[Scenario]:
    """Expand (sizes x seeds) into a deterministic scenario list.

    Mirrors the loop of :func:`repro.analysis.scaling.sweep`: for each
    ``n``, set it on the base, apply the optional ``scenario_for`` hook
    (e.g. log-scaled ``max_levels``), then spawn one scenario per seed.
    ``ns=None`` keeps the base size and varies only the seed axis.
    """
    out: list[Scenario] = []
    for n in [base.n] if ns is None else ns:
        sc_n = replace(base, n=int(n))
        if scenario_for is not None:
            sc_n = scenario_for(sc_n, int(n))
        for seed in seeds:
            out.append(replace(sc_n, seed=int(seed)))
    return out


# -- execution ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepProgress:
    """One completion event, streamed to the progress callback."""

    done: int
    total: int
    cached: int
    scenario: Scenario
    elapsed: float
    from_cache: bool


def print_progress(p: SweepProgress) -> None:
    """Default progress reporter: one stderr line per completed task."""
    tag = "cache" if p.from_cache else "run"
    print(
        f"  [{p.done}/{p.total}] n={p.scenario.n} seed={p.scenario.seed} "
        f"({tag}, {p.elapsed:.1f}s elapsed)",
        file=sys.stderr,
    )


def _run_task(args: tuple[Scenario, int]) -> SimResult:
    """Worker: one simulation (module-level so it pickles)."""
    scenario, hop_sample_every = args
    return run_scenario(scenario, hop_sample_every=hop_sample_every)


def _resolve_workers(workers: int | None, n_tasks: int) -> int:
    if workers is None:
        workers = int(os.environ.get("REPRO_SWEEP_WORKERS", "0"))
    if workers <= 1:
        return 0
    return min(workers, n_tasks)


def run_sweep(
    scenarios: Sequence[Scenario],
    *,
    hop_sample_every: int = 1000,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    progress: Callable[[SweepProgress], None] | None = None,
) -> list[SimResult]:
    """Run every scenario; return results in input order.

    Parameters
    ----------
    scenarios:
        The task list, typically from :func:`expand_grid`.
    hop_sample_every:
        Hop-sampling cadence forwarded to the simulator (part of the
        cache key).
    workers:
        Process count.  ``None`` reads ``REPRO_SWEEP_WORKERS`` (default
        serial); ``0``/``1`` run in-process.  Results are bit-identical
        either way.
    cache_dir:
        Directory for the on-disk result cache.  ``None`` disables
        caching unless ``REPRO_SWEEP_CACHE=1``, which uses
        :func:`default_cache_dir`.
    progress:
        Callback invoked once per completed task (cache hits included),
        in completion order.
    """
    scenarios = list(scenarios)
    if not scenarios:
        return []
    if cache_dir is None and os.environ.get("REPRO_SWEEP_CACHE"):
        cache_dir = default_cache_dir()
    cache = Path(cache_dir).expanduser() if cache_dir is not None else None

    t0 = time.perf_counter()
    results: list[SimResult | None] = [None] * len(scenarios)
    pending: list[int] = []
    done = cached = 0
    for i, sc in enumerate(scenarios):
        if cache is not None:
            hit = _cache_load(cache / f"{scenario_key(sc, hop_sample_every)}.pkl")
            if hit is not None:
                results[i] = hit
                done += 1
                cached += 1
                if progress is not None:
                    progress(SweepProgress(
                        done, len(scenarios), cached, sc,
                        time.perf_counter() - t0, True,
                    ))
                continue
        pending.append(i)

    def _finish(i: int, res: SimResult) -> None:
        nonlocal done
        results[i] = res
        if cache is not None:
            _cache_store(
                cache / f"{scenario_key(scenarios[i], hop_sample_every)}.pkl", res
            )
        done += 1
        if progress is not None:
            progress(SweepProgress(
                done, len(scenarios), cached, scenarios[i],
                time.perf_counter() - t0, False,
            ))

    n_workers = _resolve_workers(workers, len(pending))
    if n_workers == 0:
        for i in pending:
            _finish(i, _run_task((scenarios[i], hop_sample_every)))
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {
                pool.submit(_run_task, (scenarios[i], hop_sample_every)): i
                for i in pending
            }
            for fut in as_completed(futures):
                _finish(futures[fut], fut.result())
    return results  # type: ignore[return-value]


def cached_sweep(
    ns,
    base: Scenario,
    metrics: dict[str, Callable[[SimResult], float]],
    seeds=(0, 1),
    scenario_for: Callable[[Scenario, int], Scenario] | None = None,
    hop_sample_every: int = 1000,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    keep_results: bool = False,
    progress: Callable[[SweepProgress], None] | None = None,
) -> list["SweepPoint"]:
    """Drop-in :func:`repro.analysis.scaling.sweep` on the sweep runner.

    Same aggregation (per-n means and stds of each metric), but the runs
    go through :func:`run_sweep` — so they parallelize and hit the
    result cache.  Output is bit-identical to the serial ``sweep`` for
    the same grid.
    """
    # Imported here, not at module top: analysis sits above sim in the
    # layering (analysis.scaling imports the engine), so a top-level
    # import would be circular.
    from repro.analysis.scaling import SweepPoint

    if not metrics:
        raise ValueError("need at least one metric")
    seeds = list(seeds)
    scenarios = expand_grid(base, ns, seeds, scenario_for)
    results = run_sweep(
        scenarios,
        hop_sample_every=hop_sample_every,
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
    )
    points = []
    per_n = len(seeds)
    for i, n in enumerate(ns):
        chunk = results[i * per_n : (i + 1) * per_n]
        samples = {
            name: [float(fn(res)) for res in chunk] for name, fn in metrics.items()
        }
        points.append(
            SweepPoint(
                n=int(n),
                values={k: float(np.mean(v)) for k, v in samples.items()},
                stds={k: float(np.std(v)) for k, v in samples.items()},
                seeds=per_n,
                results=tuple(chunk) if keep_results else (),
            )
        )
    return points


def parallel_map(fn, items: Sequence, workers: int | None = None) -> list:
    """Order-preserving map for non-Scenario grids (e.g. EXP-A9's
    speed x seed runs).  ``fn`` must be module-level picklable; serial
    when ``workers`` resolves below 2."""
    items = list(items)
    n_workers = _resolve_workers(workers, len(items))
    if n_workers == 0:
        return [fn(it) for it in items]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, items))
