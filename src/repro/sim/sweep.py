"""Process-parallel sweep runner with scenario-hash result caching.

Every experiment runs the same outer loop: a grid of
:class:`~repro.sim.scenario.Scenario` specs (sizes x seeds), one
independent simulation per spec.  This module owns that loop at
production scale:

* **Grid expansion** (:func:`expand_grid`) builds the scenario list from
  a base scenario, a size axis, and a seed axis, spawning deterministic
  per-task seeds — the task list is a pure function of its inputs.
* **Parallel execution** (:func:`run_sweep`) fans tasks over a
  ``ProcessPoolExecutor``, streams completions back through a progress
  callback, and returns results in task order — bit-identical to a
  serial loop over the same scenarios (each run is independently
  seeded; no shared mutable state crosses the process boundary).
* **Crash tolerance**: a worker that raises, dies (``BrokenProcessPool``),
  or exceeds the per-task timeout is retried with exponential backoff up
  to a bounded attempt count; tasks that still fail are reported as
  structured :class:`TaskError` records.  :func:`run_sweep_detailed`
  always returns the partial results alongside the errors;
  :func:`run_sweep` raises a :class:`SweepError` (carrying both) at the
  *end* of the sweep unless ``on_error="partial"``.
* **Result caching**: completed runs are memoized on disk, keyed by a
  stable SHA-256 of the scenario dataclass, the sampling cadence, and
  :data:`CODE_VERSION`.  Re-running an experiment or benchmark reuses
  finished simulations; bump ``CODE_VERSION`` whenever simulator
  semantics change so stale artifacts can never be replayed.

* **Zero-copy result transport**: parallel workers ship each
  ``SimResult`` back through :mod:`repro.sim.shm` — the big trajectory
  and series arrays go into one POSIX shared-memory segment per result
  and only a small pickle skeleton crosses the executor pipe.  Enabled
  automatically for parallel sweeps when ``/dev/shm`` works (force with
  ``shm=True/False`` or ``REPRO_SWEEP_SHM=1/0``); both transports are
  byte-identical in what they deliver and cache, and both meter their
  serialization cost into ``SweepProgress.ser_seconds``.

Caching is opt-in (``cache_dir=...`` or ``REPRO_SWEEP_CACHE=1`` for the
default location) so tests and one-off runs stay side-effect free.
Workers default to serial in-process execution unless
``REPRO_SWEEP_WORKERS`` or an explicit ``workers=`` says otherwise —
spawn overhead only pays off on wide grids.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import pickle
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.sim.metrics import SimResult
from repro.sim.scenario import Scenario

__all__ = [
    "CODE_VERSION",
    "SweepProgress",
    "TaskError",
    "SweepRun",
    "SweepError",
    "scenario_key",
    "normalize_for_json",
    "default_cache_dir",
    "expand_grid",
    "run_sweep",
    "run_sweep_detailed",
    "cached_sweep",
    "parallel_map",
    "print_progress",
]

CODE_VERSION = "5"
"""Simulator-semantics version baked into every cache key (and every
checkpoint).  Bump this whenever a change alters what
:func:`repro.sim.engine.run_scenario` returns for a given scenario; old
cache entries then miss cleanly and old checkpoints refuse to resume.

Version 5: the handoff engine iterates candidate keys in sorted order,
which re-orders lossy-channel RNG draws (lossless series unchanged)."""


# -- cache keys ---------------------------------------------------------------------


def normalize_for_json(obj):
    """Recursively coerce numpy scalars/arrays to native Python values.

    ``json.dumps(default=str)`` would stringify a ``np.int64(200)`` while
    serializing the equal ``200`` as a number — two different payloads,
    hence two different cache keys for *equal* scenarios (an ``ns`` axis
    built from ``np.arange`` silently missed every cached run).  All
    hashing and manifest serialization goes through this normalizer so
    value equality implies payload equality.
    """
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return [normalize_for_json(x) for x in obj.tolist()]
    if isinstance(obj, dict):
        return {k: normalize_for_json(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [normalize_for_json(v) for v in obj]
    return obj


def scenario_key(scenario: Scenario, hop_sample_every: int | None = None,
                 profile: bool = False) -> str:
    """Stable SHA-256 cache key for one (scenario, sampling-cadence) run.

    The key covers every scenario field (via a sorted JSON dump of the
    dataclass, numpy values normalized to native types so equal
    scenarios hash equally), the hop-sampling cadence (``None`` resolves
    to ``scenario.hop_sample_every``, so keys agree with direct
    :func:`~repro.sim.engine.run_scenario` calls), and
    :data:`CODE_VERSION` — everything that determines the resulting
    :class:`~repro.sim.metrics.SimResult`.
    """
    if hop_sample_every is None:
        hop_sample_every = scenario.hop_sample_every
    spec = normalize_for_json(dataclasses.asdict(scenario))
    payload = {
        "scenario": spec,
        "hop_sample_every": int(hop_sample_every),
        "code_version": CODE_VERSION,
    }
    if profile:
        # Profiled results carry StepTimings; give them their own cache
        # entries (added only when True so pre-existing keys still hit).
        payload["profile"] = True
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweeps"


def _cache_load(path: Path) -> SimResult | None:
    """Load one cached result; *any* failure is a miss, never an error.

    Truncated writes, garbage bytes, and pickles from incompatible code
    versions all raise different exceptions (``EOFError``,
    ``UnpicklingError``, ``UnicodeDecodeError``, ``IndexError``, ...), so
    the net is deliberately wide: a corrupt cache entry must only cost a
    re-run.
    """
    try:
        with path.open("rb") as fh:
            res = pickle.load(fh)
    except Exception:
        return None
    return res if isinstance(res, SimResult) else None


def _cache_store(path: Path, res: SimResult) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp-{os.getpid()}")
    with tmp.open("wb") as fh:
        pickle.dump(res, fh, protocol=pickle.HIGHEST_PROTOCOL)
    tmp.replace(path)  # atomic: concurrent sweeps never see partial files


# -- grid expansion -----------------------------------------------------------------


def expand_grid(
    base: Scenario,
    ns: Sequence[int] | None = None,
    seeds: Sequence[int] = (0, 1),
    scenario_for: Callable[[Scenario, int], Scenario] | None = None,
) -> list[Scenario]:
    """Expand (sizes x seeds) into a deterministic scenario list.

    Mirrors the loop of :func:`repro.analysis.scaling.sweep`: for each
    ``n``, set it on the base, apply the optional ``scenario_for`` hook
    (e.g. log-scaled ``max_levels``), then spawn one scenario per seed.
    ``ns=None`` keeps the base size and varies only the seed axis.
    """
    out: list[Scenario] = []
    for n in [base.n] if ns is None else ns:
        sc_n = replace(base, n=int(n))
        if scenario_for is not None:
            sc_n = scenario_for(sc_n, int(n))
        for seed in seeds:
            out.append(replace(sc_n, seed=int(seed)))
    return out


# -- execution ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepProgress:
    """One completion event, streamed to the progress callback."""

    done: int
    total: int
    cached: int
    scenario: Scenario
    elapsed: float
    """Sweep-total wall seconds since the sweep started (NOT this task's
    duration — that is :attr:`task_seconds`).  The name is historical;
    its meaning is kept for existing callbacks."""
    from_cache: bool
    task_seconds: float = 0.0
    """Wall seconds this task itself took: simulation time for a run,
    load time for a cache hit."""
    worker: int | None = None
    """PID of the worker process that ran the task (``None`` for cache
    hits and in-process serial runs)."""
    attempts: int = 1
    """Attempts this task consumed before succeeding (>1 after retries)."""
    ser_seconds: float = 0.0
    """Wall seconds spent serializing this task's result across the
    process boundary (worker-side pack + parent-side unpack).  Zero for
    cache hits and in-process serial runs, where nothing crosses a
    pipe."""


def print_progress(p: SweepProgress) -> None:
    """Default progress reporter: one stderr line per completed task,
    showing both the task's own duration and the sweep-total clock."""
    tag = "cache" if p.from_cache else "run"
    retry = f" x{p.attempts}" if p.attempts > 1 else ""
    print(
        f"  [{p.done}/{p.total}] n={p.scenario.n} seed={p.scenario.seed} "
        f"({tag}{retry}, {p.task_seconds:.2f}s task, {p.elapsed:.1f}s sweep)",
        file=sys.stderr,
    )


@dataclass(frozen=True)
class TaskError:
    """Structured record of one task that failed after all retries."""

    index: int
    """Position in the input task list."""
    kind: str
    """``"exception"`` (worker raised), ``"crash"`` (worker process
    died), or ``"timeout"`` (exceeded ``task_timeout``)."""
    message: str
    attempts: int
    scenario: Scenario | None = None
    """The failed scenario (None for :func:`parallel_map` payloads)."""


@dataclass
class SweepRun:
    """Full outcome of a fault-tolerant sweep."""

    results: list
    """One entry per input task; ``None`` where the task failed."""
    errors: list[TaskError]
    """Error records for every failed task, in index order."""

    @property
    def ok(self) -> bool:
        return not self.errors


class SweepError(RuntimeError):
    """One or more sweep tasks failed after retries.

    Raised at the *end* of the sweep — every healthy task has completed
    and its result (``self.run.results``) and cache entry survive.
    """

    def __init__(self, run: SweepRun):
        self.run = run
        summary = "; ".join(
            f"task {e.index} ({e.kind} after {e.attempts} attempt(s)): {e.message}"
            for e in run.errors[:3]
        )
        if len(run.errors) > 3:
            summary += f"; ... {len(run.errors) - 3} more"
        super().__init__(f"{len(run.errors)} sweep task(s) failed: {summary}")


@dataclass(frozen=True)
class _TaskOutcome:
    """A worker's result plus its telemetry (never cached or returned:
    :func:`run_sweep_detailed` unwraps it before storing).

    With a transport in play, ``result`` is ``None`` and ``packed``
    carries the serialized form (shm payload or pickle bytes) for the
    parent to restore; ``ser_seconds`` holds the worker-side pack time
    (the parent adds its unpack time before reporting).
    """

    result: SimResult | None
    seconds: float
    worker: int
    ser_seconds: float = 0.0
    packed: object = None


def _run_task(args: tuple) -> _TaskOutcome:
    """Worker: one simulation (module-level so it pickles).

    The payload is ``(scenario, hop_sample_every, profile, ckpt_path,
    ckpt_every, transport)``.  With a checkpoint path, the worker first
    tries to resume from it — so a task whose previous attempt crashed
    or timed out restarts from its last checkpoint instead of from
    scratch.  Any load failure (missing file, corrupt bytes, version
    mismatch, wrong scenario) falls back to a fresh run; the checkpoint
    file is removed once the run completes.

    ``transport`` shapes the return trip: ``None`` ships the result
    object straight through the executor (serial mode); ``"pickle"``
    pre-pickles it (metering the cost); ``"shm:<prefix>"`` packs it via
    :func:`repro.sim.shm.pack_result`, which silently degrades to
    pickle bytes if segment creation fails in this worker.
    """
    from repro.sim.engine import Simulator

    scenario, hop_sample_every, profile, ckpt_path, ckpt_every, transport = args
    t0 = time.perf_counter()
    sim = None
    if ckpt_path is not None:
        try:
            sim = Simulator.restore(ckpt_path)
        except Exception:
            sim = None
        if sim is not None and sim.sc != scenario:
            sim = None
    if sim is None:
        sim = Simulator(scenario, hop_sample_every=hop_sample_every,
                        profile=profile)
    if ckpt_path is not None:
        res = sim.run(checkpoint_every=ckpt_every,
                      checkpoint_path=ckpt_path)
        try:
            os.remove(ckpt_path)
        except OSError:
            pass
    else:
        res = sim.run()
    seconds = time.perf_counter() - t0
    if transport is None:
        return _TaskOutcome(result=res, seconds=seconds, worker=os.getpid())
    t_ser = time.perf_counter()
    if transport.startswith("shm:"):
        from repro.sim.shm import pack_result

        packed = pack_result(res, transport[4:])
    else:
        packed = pickle.dumps(res, protocol=pickle.HIGHEST_PROTOCOL)
    return _TaskOutcome(
        result=None, seconds=seconds, worker=os.getpid(),
        ser_seconds=time.perf_counter() - t_ser, packed=packed,
    )


def _resolve_workers(workers: int | None, n_tasks: int) -> int:
    if workers is None:
        workers = int(os.environ.get("REPRO_SWEEP_WORKERS", "0"))
    if workers <= 1:
        return 0
    return min(workers, n_tasks)


def _resolve_shm(shm: bool | None, n_workers: int) -> bool:
    """Decide the result transport for this sweep.

    Explicit ``shm=`` wins; otherwise ``REPRO_SWEEP_SHM`` (``0``/empty
    disables); otherwise auto — on for parallel sweeps.  Regardless of
    the request, shm only engages when the sweep is actually parallel
    (serial results never cross a pipe) and the host's POSIX shared
    memory passes the availability probe.
    """
    if shm is None:
        env = os.environ.get("REPRO_SWEEP_SHM")
        if env is not None:
            shm = env.strip().lower() not in ("", "0", "false", "no")
        else:
            shm = True
    if not shm or n_workers == 0:
        return False
    from repro.sim.shm import shm_available

    return shm_available()


def _serial_round(fn, tasks: dict, on_result) -> dict[int, tuple[str, str]]:
    """Run one attempt of every task in-process."""
    failed: dict[int, tuple[str, str]] = {}
    for i, payload in tasks.items():
        try:
            res = fn(payload)
        except Exception as exc:
            failed[i] = ("exception", f"{type(exc).__name__}: {exc}")
        else:
            on_result(i, res)
    return failed


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Forcibly terminate every live worker process of ``pool``.

    Used on abnormal exits (round timeout, ``KeyboardInterrupt``): a
    plain ``shutdown(wait=False)`` never signals workers mid-task, so a
    hung or long-running task would orphan its process.
    """
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        proc.terminate()


def _parallel_round(
    fn, tasks: dict, n_workers: int, task_timeout: float | None, on_result
) -> dict[int, tuple[str, str]]:
    """Run one attempt of every task in a fresh process pool.

    A fresh pool per round means a crash (``BrokenProcessPool``) or a
    hung worker poisons at most this round; the next retry round starts
    clean.  ``task_timeout`` is enforced as a round budget of
    ``task_timeout * ceil(tasks / workers)`` seconds — each queue wave
    gets the per-task allowance.
    """
    failed: dict[int, tuple[str, str]] = {}
    n_workers = min(n_workers, len(tasks))
    pool = ProcessPoolExecutor(max_workers=n_workers)
    futures = {pool.submit(fn, p): i for i, p in tasks.items()}
    pending = set(futures)
    deadline = None
    if task_timeout is not None:
        waves = math.ceil(len(tasks) / n_workers)
        deadline = time.monotonic() + task_timeout * waves
    try:
        while pending:
            timeout = None
            if deadline is not None:
                timeout = max(deadline - time.monotonic(), 0.0)
            done, pending = wait(pending, timeout=timeout,
                                 return_when=FIRST_COMPLETED)
            broken = False
            for fut in done:
                i = futures[fut]
                try:
                    res = fut.result()
                except BrokenProcessPool:
                    failed[i] = ("crash", "worker process died mid-task")
                    broken = True
                except Exception as exc:
                    failed[i] = ("exception", f"{type(exc).__name__}: {exc}")
                else:
                    on_result(i, res)
            if broken:
                # The pool is dead; every in-flight task goes down with it.
                for fut in pending:
                    failed[futures[fut]] = (
                        "crash", "worker pool broke before this task finished"
                    )
                pending = set()
            elif deadline is not None and pending and \
                    time.monotonic() >= deadline:
                for fut in pending:
                    fut.cancel()
                    failed[futures[fut]] = (
                        "timeout",
                        f"exceeded task_timeout={task_timeout}s round budget",
                    )
                pending = set()
                # Hung workers would block shutdown forever: kill them.
                _terminate_workers(pool)
    except BaseException:
        # KeyboardInterrupt (or any other escape) must not strand live
        # worker processes: shutdown(wait=False) alone leaves them
        # running their current task to completion — or forever, if
        # it hangs.  Kill the pool before propagating.
        _terminate_workers(pool)
        raise
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return failed


def _execute(
    fn,
    payloads: dict[int, object],
    *,
    workers: int,
    task_timeout: float | None,
    task_retries: int,
    retry_backoff: float,
    on_result,
) -> dict[int, tuple[str, str, int]]:
    """Attempt every payload, retrying failures with exponential backoff.

    Calls ``on_result(index, result, attempts)`` as each task completes;
    returns ``{index: (kind, message, attempts)}`` for tasks that failed
    every attempt (bounded by ``1 + task_retries`` tries per task).
    """
    remaining = dict(payloads)
    attempts = {i: 0 for i in payloads}
    errors: dict[int, tuple[str, str, int]] = {}
    delay = retry_backoff

    def _completed(i, res):
        on_result(i, res, attempts[i])

    while remaining:
        for i in remaining:
            attempts[i] += 1
        if workers == 0:
            failed = _serial_round(fn, remaining, _completed)
        else:
            failed = _parallel_round(
                fn, remaining, workers, task_timeout, _completed
            )
        retry: dict[int, object] = {}
        for i, (kind, message) in failed.items():
            if attempts[i] <= task_retries:
                retry[i] = remaining[i]
            else:
                errors[i] = (kind, message, attempts[i])
        remaining = retry
        if remaining and delay > 0:
            time.sleep(delay)
            delay *= 2
    return errors


def run_sweep_detailed(
    scenarios: Sequence[Scenario],
    *,
    hop_sample_every: int | None = None,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    progress: Callable[[SweepProgress], None] | None = None,
    task_timeout: float | None = None,
    task_retries: int = 1,
    retry_backoff: float = 0.5,
    profile: bool = False,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int | None = None,
    shm: bool | None = None,
) -> SweepRun:
    """Run every scenario fault-tolerantly; never raises on task failure.

    Parameters
    ----------
    scenarios:
        The task list, typically from :func:`expand_grid`.
    hop_sample_every:
        Hop-sampling cadence forwarded to the simulator (part of the
        cache key).  ``None`` (default) uses each scenario's own
        ``hop_sample_every`` field, so sweep cache keys agree with
        direct :func:`~repro.sim.engine.run_scenario` calls.
    workers:
        Process count.  ``None`` reads ``REPRO_SWEEP_WORKERS`` (default
        serial); ``0``/``1`` run in-process.  Results are bit-identical
        either way.
    cache_dir:
        Directory for the on-disk result cache.  ``None`` disables
        caching unless ``REPRO_SWEEP_CACHE=1``, which uses
        :func:`default_cache_dir`.
    progress:
        Callback invoked once per completed task (cache hits included),
        in completion order.
    task_timeout:
        Per-task wall-clock allowance in seconds (parallel mode only;
        enforced per round of the queue).  ``None`` disables.
    task_retries:
        Extra attempts after a task's first failure (crash, exception,
        or timeout), with exponential backoff between rounds.
    retry_backoff:
        Initial inter-round backoff in seconds (doubles per round).
    profile:
        Run every simulation with phase timers on, attaching
        :class:`repro.obs.StepTimings` to each result.  Metrics are
        bit-identical; profiled runs use distinct cache entries (their
        results carry timings, unprofiled ones don't).
    checkpoint_dir:
        Directory for per-task mid-run checkpoints.  When set, each
        task checkpoints its simulator state every ``checkpoint_every``
        steps (keyed by the task's scenario hash), and a retried task —
        after a crash or timeout — resumes from its last checkpoint
        instead of restarting from scratch.  Results are bit-identical
        either way; checkpoint files are removed as tasks complete.
    checkpoint_every:
        Checkpoint cadence in metered steps (default 25 when
        ``checkpoint_dir`` is set; ignored otherwise).
    shm:
        Result transport for parallel sweeps.  ``True`` ships each
        result's large arrays through a POSIX shared-memory segment
        (:mod:`repro.sim.shm`) instead of the executor pipe; ``False``
        forces plain pickling; ``None`` (default) reads
        ``REPRO_SWEEP_SHM``, else auto-enables when the sweep is
        parallel and shared memory is available.  Results are
        byte-identical either way — only ``SweepProgress.ser_seconds``
        (and wall time) differ.  Orphaned segments from killed workers
        are swept from ``/dev/shm`` when the sweep ends.

    Returns
    -------
    SweepRun
        ``results`` in task order (``None`` holes for failed tasks) and
        structured ``errors`` for every failure.
    """
    scenarios = list(scenarios)
    if not scenarios:
        return SweepRun(results=[], errors=[])
    if task_retries < 0:
        raise ValueError("task_retries must be non-negative")
    if cache_dir is None and os.environ.get("REPRO_SWEEP_CACHE"):
        cache_dir = default_cache_dir()
    cache = Path(cache_dir).expanduser() if cache_dir is not None else None
    ckpt_root = (
        Path(checkpoint_dir).expanduser() if checkpoint_dir is not None else None
    )
    if ckpt_root is not None:
        ckpt_root.mkdir(parents=True, exist_ok=True)

    def _ckpt_path(sc: Scenario) -> str | None:
        if ckpt_root is None:
            return None
        return str(ckpt_root / f"{scenario_key(sc, hop_sample_every, profile)}.ckpt")

    t0 = time.perf_counter()
    results: list[SimResult | None] = [None] * len(scenarios)
    pending: list[int] = []
    done = cached = 0
    def _key_path(sc: Scenario) -> Path:
        return cache / f"{scenario_key(sc, hop_sample_every, profile)}.pkl"

    for i, sc in enumerate(scenarios):
        if cache is not None:
            t_load = time.perf_counter()
            hit = _cache_load(_key_path(sc))
            if hit is not None:
                results[i] = hit
                done += 1
                cached += 1
                if progress is not None:
                    progress(SweepProgress(
                        done, len(scenarios), cached, sc,
                        time.perf_counter() - t0, True,
                        task_seconds=time.perf_counter() - t_load,
                    ))
                continue
        pending.append(i)

    def _finish(i: int, out: _TaskOutcome, attempts: int) -> None:
        nonlocal done
        res, ser = out.result, out.ser_seconds
        if out.packed is not None:
            from repro.sim.shm import unpack_result

            t_ser = time.perf_counter()
            res = unpack_result(out.packed)
            ser += time.perf_counter() - t_ser
        results[i] = res
        if cache is not None:
            _cache_store(_key_path(scenarios[i]), res)
        done += 1
        if progress is not None:
            progress(SweepProgress(
                done, len(scenarios), cached, scenarios[i],
                time.perf_counter() - t0, False,
                task_seconds=out.seconds,
                worker=out.worker if out.worker != os.getpid() else None,
                attempts=attempts,
                ser_seconds=ser,
            ))

    n_workers = _resolve_workers(workers, len(pending))
    transport = None
    shm_prefix = None
    if n_workers > 0:
        if _resolve_shm(shm, n_workers):
            from repro.sim.shm import sweep_prefix

            shm_prefix = sweep_prefix()
            transport = f"shm:{shm_prefix}"
        else:
            transport = "pickle"
    try:
        failures = _execute(
            _run_task,
            {
                i: (scenarios[i], hop_sample_every, profile,
                    _ckpt_path(scenarios[i]), checkpoint_every, transport)
                for i in pending
            },
            workers=n_workers,
            task_timeout=task_timeout,
            task_retries=task_retries,
            retry_backoff=retry_backoff,
            on_result=_finish,
        )
    finally:
        if shm_prefix is not None:
            # Workers killed mid-flight (crash, timeout, Ctrl-C) leak
            # the segments they had already published; reap them.
            from repro.sim.shm import cleanup_segments

            cleanup_segments(shm_prefix)
    errors = [
        TaskError(index=i, kind=kind, message=message, attempts=attempts,
                  scenario=scenarios[i])
        for i, (kind, message, attempts) in sorted(failures.items())
    ]
    return SweepRun(results=results, errors=errors)


def run_sweep(
    scenarios: Sequence[Scenario],
    *,
    hop_sample_every: int | None = None,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    progress: Callable[[SweepProgress], None] | None = None,
    task_timeout: float | None = None,
    task_retries: int = 1,
    retry_backoff: float = 0.5,
    on_error: str = "raise",
    profile: bool = False,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int | None = None,
    shm: bool | None = None,
) -> list[SimResult]:
    """Run every scenario; return results in input order.

    Thin wrapper over :func:`run_sweep_detailed`.  Tasks that fail after
    retries are reported at the *end* of the sweep: ``on_error="raise"``
    (default) raises :class:`SweepError` — carrying the partial
    ``SweepRun`` as ``exc.run`` — once every healthy task has finished;
    ``on_error="partial"`` returns the results list with ``None`` holes
    at failed indices instead.
    """
    if on_error not in ("raise", "partial"):
        raise ValueError('on_error must be "raise" or "partial"')
    run = run_sweep_detailed(
        scenarios,
        hop_sample_every=hop_sample_every,
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
        task_timeout=task_timeout,
        task_retries=task_retries,
        retry_backoff=retry_backoff,
        profile=profile,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        shm=shm,
    )
    if run.errors and on_error == "raise":
        raise SweepError(run)
    return run.results  # type: ignore[return-value]


def cached_sweep(
    ns,
    base: Scenario,
    metrics: dict[str, Callable[[SimResult], float]],
    seeds=(0, 1),
    scenario_for: Callable[[Scenario, int], Scenario] | None = None,
    hop_sample_every: int | None = None,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    keep_results: bool = False,
    progress: Callable[[SweepProgress], None] | None = None,
    task_timeout: float | None = None,
    task_retries: int = 1,
    profile: bool = False,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int | None = None,
    shm: bool | None = None,
) -> list["SweepPoint"]:
    """Drop-in :func:`repro.analysis.scaling.sweep` on the sweep runner.

    Same aggregation (per-n means and stds of each metric), but the runs
    go through :func:`run_sweep` — so they parallelize and hit the
    result cache.  Output is bit-identical to the serial ``sweep`` for
    the same grid.
    """
    # Imported here, not at module top: analysis sits above sim in the
    # layering (analysis.scaling imports the engine), so a top-level
    # import would be circular.
    from repro.analysis.scaling import SweepPoint

    if not metrics:
        raise ValueError("need at least one metric")
    seeds = list(seeds)
    # Materialize the size axis exactly once.  expand_grid supports
    # ns=None (seed axis only) and any iterable; iterating ``ns`` again
    # below would crash on None and silently yield zero points for a
    # generator already consumed by expand_grid.
    ns = [base.n] if ns is None else [int(n) for n in ns]
    scenarios = expand_grid(base, ns, seeds, scenario_for)
    results = run_sweep(
        scenarios,
        hop_sample_every=hop_sample_every,
        workers=workers,
        cache_dir=cache_dir,
        progress=progress,
        task_timeout=task_timeout,
        task_retries=task_retries,
        profile=profile,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        shm=shm,
    )
    points = []
    per_n = len(seeds)
    for i, n in enumerate(ns):
        chunk = results[i * per_n : (i + 1) * per_n]
        # A metric may return None for "not measured in this run" (e.g.
        # query_success_rate when a cell samples no queries).  Those
        # samples are *missing*, not zero: they become NaN and are
        # skipped by the aggregation, so a mixed grid's mean reflects
        # only the cells that actually measured the quantity.
        samples = {
            name: np.array(
                [np.nan if (v := fn(res)) is None else float(v)
                 for res in chunk],
                dtype=float,
            )
            for name, fn in metrics.items()
        }
        points.append(
            SweepPoint(
                n=int(n),
                values={k: _nan_skip(v, np.mean) for k, v in samples.items()},
                stds={k: _nan_skip(v, np.std) for k, v in samples.items()},
                seeds=per_n,
                results=tuple(chunk) if keep_results else (),
            )
        )
    return points


def _nan_skip(samples: "np.ndarray", agg) -> float:
    """Aggregate ``samples`` ignoring NaN; NaN when nothing measured."""
    kept = samples[~np.isnan(samples)]
    return float(agg(kept)) if kept.size else float("nan")


def parallel_map(
    fn,
    items: Sequence,
    workers: int | None = None,
    *,
    task_timeout: float | None = None,
    task_retries: int = 1,
    retry_backoff: float = 0.5,
    on_error: str = "raise",
) -> list:
    """Order-preserving, fault-tolerant map for non-Scenario grids
    (e.g. EXP-A9's speed x seed runs).

    ``fn`` must be module-level picklable; serial when ``workers``
    resolves below 2.  Failed items (worker exception, crash, or
    timeout) are retried ``task_retries`` times with exponential
    backoff; ``on_error="raise"`` (default) then raises
    :class:`SweepError` at the end, ``on_error="partial"`` leaves
    ``None`` at the failed positions.
    """
    if on_error not in ("raise", "partial"):
        raise ValueError('on_error must be "raise" or "partial"')
    items = list(items)
    results: list = [None] * len(items)

    def _finish(i: int, res, attempts: int) -> None:
        results[i] = res

    failures = _execute(
        fn,
        dict(enumerate(items)),
        workers=_resolve_workers(workers, len(items)),
        task_timeout=task_timeout,
        task_retries=task_retries,
        retry_backoff=retry_backoff,
        on_result=_finish,
    )
    if failures and on_error == "raise":
        errors = [
            TaskError(index=i, kind=kind, message=message, attempts=attempts)
            for i, (kind, message, attempts) in sorted(failures.items())
        ]
        raise SweepError(SweepRun(results=results, errors=errors))
    return results
