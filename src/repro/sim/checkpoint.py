"""Checkpoint container for long simulation runs.

A :class:`SimCheckpoint` freezes *everything* a mid-run simulator needs
to continue bit-identically: the mobility model (positions, waypoints,
and its RNG), the handoff engine's assignment/staleness state, the
maintainer (sticky/persistent elections), the delivery engine, the
chaos engine (crash deadlines, episode state, and its RNG streams),
and every collector object (which carry their
own RNG streams).  All of it is pickled as one object, so references
shared between components — e.g. the delivery engine held by both the
simulator and the query collector — stay shared after restore.

Checkpoints are code-version-stamped: loading a checkpoint written by a
different :data:`repro.sim.sweep.CODE_VERSION` fails loudly (a resumed
run must equal an uninterrupted one, which only holds within one
simulator version).  See :func:`repro.persist.save_checkpoint` /
:func:`repro.persist.load_checkpoint` for the on-disk format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.sim.scenario import Scenario

__all__ = ["CHECKPOINT_SCHEMA", "SimCheckpoint"]

CHECKPOINT_SCHEMA = 3
"""On-disk checkpoint layout version (bumped when fields change shape).

Schema 3 added the event-driven hierarchy plane state (``delta_plane``,
``edge_cache``) so incremental runs resume bit-identically.  Schema 2
replaced the ``down_until`` / ``now`` / ``failure_rng`` triplet with the
``chaos`` engine object.  Older-schema checkpoints are refused at load
time (:func:`repro.persist.load_checkpoint`)."""


@dataclass
class SimCheckpoint:
    """Full mid-run simulator state (see the module docstring).

    Attributes
    ----------
    code_version:
        :data:`repro.sim.sweep.CODE_VERSION` at save time; loading
        validates it.
    scenario:
        The run's scenario (restore re-derives nothing from it — it is
        carried for validation and resumed construction).
    hop_sample_every:
        The resolved sampling cadence the run was started with.
    next_step:
        First metered step the resumed run will execute.
    started:
        Whether warmup + baseline already ran (always True for
        checkpoints taken mid-loop).
    model:
        The mobility model, including positions and its RNG stream.
    engine:
        The :class:`~repro.core.handoff.HandoffEngine` (assignments,
        stale entries).
    maintainer:
        Sticky/persistent hierarchy maintainer, or None (memoryless).
    delivery:
        The lossy-control :class:`~repro.faults.DeliveryEngine`, or None.
    chaos:
        The :class:`~repro.faults.ChaosEngine` (crash deadlines, chaos
        clock, fired-episode state, both RNG streams), or None when the
        run injects no faults.
    prev_hierarchy:
        Last step's hierarchy (address-diff reference for collectors).
    collectors:
        Every registered collector object, in dispatch order.
    timings:
        Accumulated :class:`~repro.obs.timers.StepTimings`, or None.
    trace:
        The simulator's :class:`~repro.sim.trace.EventTrace`, or None
        (the same object a :class:`TraceCollector` holds).
    delta_plane:
        The :class:`~repro.hierarchy.delta.DeltaPlane` (per-level
        incremental election state and last two snapshots), or None
        when ``incremental_hierarchy`` is off.
    edge_cache:
        The :class:`~repro.radio.edge_cache.VerletEdgeCache` (candidate
        pairs + reference positions), or None.
    schema:
        :data:`CHECKPOINT_SCHEMA` at save time.
    """

    code_version: str
    scenario: Scenario
    hop_sample_every: int
    next_step: int
    started: bool
    model: Any
    engine: Any
    maintainer: Any
    delivery: Any
    chaos: Any
    prev_hierarchy: Any
    collectors: list
    timings: Any = None
    trace: Any = None
    delta_plane: Any = None
    edge_cache: Any = None
    schema: int = field(default=CHECKPOINT_SCHEMA)
