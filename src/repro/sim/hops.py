"""Hop-count providers for packet metering.

Every overhead meter charges a transfer as the number of packet
transmissions along its route.  Two providers:

* :class:`BfsHops` — exact hop counts on the current unit-disk graph
  (cached single-source BFS; the honest meter for small/medium runs);
* :class:`EuclideanHops` — ``ceil(detour * distance / R_tx)``, the
  standard estimator for large sweeps.  It preserves the Theta(distance)
  scaling the paper's analysis depends on (h_k = Theta(sqrt(c_k))) at a
  fraction of the cost.
"""

from __future__ import annotations

import numpy as np

from repro.graphs import CompactGraph
from repro.routing.flat import FlatRouter

__all__ = ["BfsHops", "EuclideanHops"]


class BfsHops:
    """Exact hop provider over one topology snapshot."""

    def __init__(self, g: CompactGraph):
        self._router = FlatRouter(g)

    def __call__(self, u: int, v: int) -> int:
        """Hop count u -> v; -1 when unreachable (caller clamps)."""
        return self._router.hop_count(u, v)

    def batch(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorized hop counts for aligned ID arrays.

        Groups by source and indexes each cached BFS distance row once —
        bit-identical to the scalar call (exact BFS distances, -1 when
        unreachable) and sharing the same per-source cache."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        out = np.empty(us.size, dtype=np.int64)
        if us.size == 0:
            return out
        g = self._router.g
        ids = g.node_ids
        vi = np.searchsorted(ids, vs)
        if np.any(vi >= ids.size) or np.any(ids[np.minimum(vi, ids.size - 1)] != vs):
            raise KeyError("unknown node id(s) in hop batch")
        order = np.argsort(us, kind="stable")
        uniq, starts = np.unique(us[order], return_index=True)
        for s, grp in zip(uniq.tolist(), np.split(order, starts[1:])):
            out[grp] = self._router.distances_from(s)[vi[grp]]
        return out


class EuclideanHops:
    """Distance-proportional hop estimator over one position snapshot."""

    def __init__(self, positions: np.ndarray, r_tx: float, detour: float = 1.3):
        if r_tx <= 0:
            raise ValueError("transmission radius must be positive")
        if detour < 1.0:
            raise ValueError("detour factor must be >= 1")
        self._pts = np.asarray(positions, dtype=np.float64)
        self._r = float(r_tx)
        self._detour = float(detour)

    def __call__(self, u: int, v: int) -> int:
        if u == v:
            return 0
        d = float(np.linalg.norm(self._pts[u] - self._pts[v]))
        return max(int(np.ceil(self._detour * d / self._r)), 1)

    def batch(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorized estimator for aligned ID arrays.

        ``sqrt(dx*dx + dy*dy)`` runs the identical IEEE operation
        sequence as the scalar ``np.linalg.norm`` on a 2-vector, so the
        results are bit-identical, not merely close."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        pu = self._pts[us]
        pv = self._pts[vs]
        dx = pu[:, 0] - pv[:, 0]
        dy = pu[:, 1] - pv[:, 1]
        dist = np.sqrt(dx * dx + dy * dy)
        hops = np.maximum(
            np.ceil(self._detour * dist / self._r), 1.0
        ).astype(np.int64)
        hops[us == vs] = 0
        return hops
