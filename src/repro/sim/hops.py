"""Hop-count providers for packet metering.

Every overhead meter charges a transfer as the number of packet
transmissions along its route.  Two providers:

* :class:`BfsHops` — exact hop counts on the current unit-disk graph
  (cached single-source BFS; the honest meter for small/medium runs);
* :class:`EuclideanHops` — ``ceil(detour * distance / R_tx)``, the
  standard estimator for large sweeps.  It preserves the Theta(distance)
  scaling the paper's analysis depends on (h_k = Theta(sqrt(c_k))) at a
  fraction of the cost.
"""

from __future__ import annotations

import numpy as np

from repro.graphs import CompactGraph
from repro.routing.flat import FlatRouter

__all__ = ["BfsHops", "EuclideanHops"]


class BfsHops:
    """Exact hop provider over one topology snapshot."""

    def __init__(self, g: CompactGraph):
        self._router = FlatRouter(g)

    def __call__(self, u: int, v: int) -> int:
        """Hop count u -> v; -1 when unreachable (caller clamps)."""
        return self._router.hop_count(u, v)


class EuclideanHops:
    """Distance-proportional hop estimator over one position snapshot."""

    def __init__(self, positions: np.ndarray, r_tx: float, detour: float = 1.3):
        if r_tx <= 0:
            raise ValueError("transmission radius must be positive")
        if detour < 1.0:
            raise ValueError("detour factor must be >= 1")
        self._pts = np.asarray(positions, dtype=np.float64)
        self._r = float(r_tx)
        self._detour = float(detour)

    def __call__(self, u: int, v: int) -> int:
        if u == v:
            return 0
        d = float(np.linalg.norm(self._pts[u] - self._pts[v]))
        return max(int(np.ceil(self._detour * d / self._r)), 1)
