"""The time-stepped MANET simulator.

One step of the pipeline (Section 1.2's model, end to end):

1. mobility advances node positions (random waypoint by default),
2. the unit-disk graph is rebuilt (k-d tree),
3. the ALCA hierarchy is re-elected recursively,
4. the CHLM handoff engine diffs server assignments and meters packets,
5. the step's outputs are frozen into a
   :class:`~repro.sim.snapshot.StepSnapshot` and dispatched to the
   registered collectors (:mod:`repro.sim.collectors`), which record
   link events (f_0, g_k), ALCA states (p_j), level shapes (alpha_k,
   |E_k|), sampled hop counts (h, h_k), traces, and queries.

Warmup steps run mobility only, letting the RWP spatial distribution mix
before metering starts.  The stepping plane (phases 1-4) and the
measurement plane (collectors) are fully decoupled: custom metrics are
added by registering collectors, never by editing this loop — see
docs/ARCHITECTURE.md.

Long runs can be checkpointed (:meth:`Simulator.checkpoint`) and resumed
(:meth:`Simulator.restore`); a resumed run produces a result identical
to an uninterrupted one with the same seed.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.handoff import HandoffEngine
from repro.graphs import CompactGraph
from repro.hierarchy.levels import build_hierarchy
from repro.mobility import make_model
from repro.radio.unit_disk import unit_disk_edges
from repro.sim.checkpoint import SimCheckpoint
from repro.sim.hops import BfsHops, EuclideanHops
from repro.sim.metrics import SimResult
from repro.sim.rng import spawn_rngs
from repro.sim.scenario import Scenario
from repro.sim.snapshot import StepSnapshot

__all__ = ["Simulator", "run_scenario"]

# SimResult fields a collector's finalize() dict may populate; anything
# else a collector returns is routed to SimResult.extras.
_RESULT_FIELDS = frozenset({
    "ledger", "f0", "level_series", "state_stats", "h_network", "h_levels",
    "mean_degree", "giant_fraction", "trace", "queries",
})


class Simulator:
    """Executes one :class:`~repro.sim.scenario.Scenario`.

    The engine owns the stepping plane only; every metric is produced by
    a collector (:mod:`repro.sim.collectors`).  ``collectors=`` appends
    custom collectors after the scenario's default set — each sees every
    metered step exactly once and contributes to the result via
    ``finalize()`` (unknown keys land in ``SimResult.extras``).
    """

    def __init__(self, scenario: Scenario, hop_sample_every: int | None = None,
                 trace: bool = False, trace_capacity: int | None = 50_000,
                 profile: bool = False, collectors: list | None = None):
        self.sc = scenario
        self.hop_sample_every = (
            scenario.hop_sample_every if hop_sample_every is None
            else max(int(hop_sample_every), 1)
        )
        self.trace = None
        if trace:
            from repro.sim.trace import EventTrace

            self.trace = EventTrace(capacity=trace_capacity)
        # Phase timers (repro.obs): wall-clock only, never an RNG stream,
        # so a profiled run replays bit-identically.  Imported lazily to
        # keep the engine importable while repro.obs initializes.
        self.timings = None
        if profile:
            from repro.obs.timers import StepTimings

            self.timings = StepTimings()
        # "faults", "queries", "chaos", and "service" were appended in
        # that order: SeedSequence.spawn is prefix-stable, so
        # pre-existing scenarios replay bit-identically.
        rngs = spawn_rngs(
            scenario.seed,
            ["placement", "mobility", "sampling", "failures", "faults",
             "queries", "chaos", "service"],
        )
        # Fault schedule (repro.faults.chaos): crash/recover, targeted
        # kills, partitions, burst loss.  The legacy failure_rate field
        # rides the same engine as a whole-run episode on the historical
        # "failures" stream; with no fault injection at all the engine
        # is never built and the pipeline is bit-identical to the
        # chaos-free simulator.
        schedule = scenario.fault_schedule()
        self._chaos = None
        if schedule:
            from repro.faults import ChaosEngine

            self._chaos = ChaosEngine(
                scenario.n, schedule, rngs["chaos"],
                legacy_rng=rngs["failures"],
            )
        # Lossy control plane (EXP-A10): built when the scenario asks
        # for loss — or schedules burst-loss windows — so lossless runs
        # never touch the fault path.
        self._delivery = None
        self._base_loss = None
        if scenario.faults_enabled or schedule.needs_delivery:
            from repro.faults import DeliveryEngine

            self._base_loss = scenario.loss_model()
            self._delivery = DeliveryEngine(
                loss=self._base_loss,
                retry=scenario.retry_policy(),
                rng=rngs["faults"],
            )
        # The mobility model also owns initial placement; hand it the
        # placement stream first so placement is independent of stepping.
        self.model = make_model(
            scenario.mobility,
            scenario.n,
            scenario.region,
            scenario.speed,
            rngs["mobility"],
            **scenario.mobility_kwargs,
        )
        self._maintainer = None
        if scenario.election_mode == "sticky":
            from repro.hierarchy.maintain import HierarchyMaintainer

            self._maintainer = HierarchyMaintainer(
                max_levels=scenario.max_levels,
                level_mode=scenario.level_mode,
                r0=scenario.r_tx if scenario.level_mode == "radio" else None,
            )
        elif scenario.election_mode == "persistent":
            from repro.hierarchy.persistent import PersistentHierarchyMaintainer

            self._maintainer = PersistentHierarchyMaintainer(
                max_levels=scenario.max_levels, r0=scenario.r_tx
            )
        # Event-driven hierarchy plane (incremental_hierarchy=True):
        # Verlet edge maintenance, per-level election patching (or delta
        # tracking around the maintainer), and dirty-chain handoff
        # patching.  Consumes no RNG stream, so the two pipelines are
        # bit-identical — the equivalence matrix in
        # tests/sim/test_incremental_equivalence.py enforces it.
        self._delta_plane = None
        self._edge_cache = None
        if scenario.incremental_hierarchy:
            from repro.hierarchy.delta import DeltaPlane
            from repro.radio.edge_cache import VerletEdgeCache

            self._delta_plane = DeltaPlane(
                scenario.n,
                max_levels=scenario.max_levels,
                level_mode=scenario.level_mode,
                r0=scenario.r_tx if scenario.level_mode == "radio" else None,
                build=self._maintainer is None,
            )
            self._edge_cache = VerletEdgeCache(scenario.r_tx,
                                               skin=scenario.verlet_skin)
        self._engine = HandoffEngine(
            hash_fn=scenario.hash_fn,
            incremental=scenario.incremental_hierarchy,
        )
        self._collectors = self._default_collectors(rngs)
        if collectors:
            self._collectors.extend(collectors)
        self._prev_hierarchy = None
        self._started = False
        self._next_step = 0

    @property
    def next_step(self) -> int:
        """Index of the next metered step to run (0 for a fresh run).

        After :meth:`restore` this reports where the interrupted run
        left off; once :meth:`run` returns it equals ``scenario.steps``.
        """
        return self._next_step

    def _default_collectors(self, rngs: dict) -> list:
        """Build the scenario's default measurement plane.

        Dispatch order is stable but immaterial for determinism: the two
        RNG-consuming collectors (queries, hop sampling) each own a
        dedicated stream.
        """
        from repro.sim.collectors import (
            HopSampleCollector,
            LedgerCollector,
            LevelSeriesCollector,
            LinkEventCollector,
            QueryCollector,
            StateCollector,
            TraceCollector,
        )

        sc = self.sc
        out: list = [
            LedgerCollector(n_nodes=sc.n),
            LinkEventCollector(n=sc.n),
        ]
        if sc.queries_per_step > 0:
            out.append(QueryCollector(rngs["queries"], delivery=self._delivery))
        out.append(StateCollector())
        if self.trace is not None:
            out.append(TraceCollector(self.trace))
        out.append(LevelSeriesCollector(n=sc.n))
        out.append(HopSampleCollector(rngs["sampling"], self.hop_sample_every))
        if sc.service_enabled:
            # Open-loop service plane (repro.service): draws only from
            # the dedicated "service" stream and builds per-request
            # delivery RNGs, so registering it leaves every other
            # series bit-identical.
            from repro.sim.collectors import ServiceCollector

            out.append(ServiceCollector(sc, rngs["service"],
                                        delivery=self._delivery))
        if sc.resolved_invariant_mode != "off":
            from repro.sim.collectors import ChaosCollector

            query_ledgers = [c.ledger for c in out
                             if isinstance(c, QueryCollector)]
            out.append(ChaosCollector(
                self._chaos.schedule if self._chaos else None,
                mode=sc.resolved_invariant_mode,
                ledger=query_ledgers[0] if query_ledgers else None,
                slo_success_threshold=sc.slo_success_threshold,
                slo_window=sc.slo_window,
            ))
        return out

    # -- helpers ------------------------------------------------------------------

    def _edges(self, positions: np.ndarray):
        """Unit-disk edges (k-d tree, or the bit-identical Verlet cache
        on the incremental path) plus chaos filtering (crashed nodes and
        partition-severed links removed).

        Returns ``(edges, diff)``: the Verlet cache's free one-step
        :class:`~repro.radio.linkevents.LinkDiff` rides along so the
        delta plane can skip re-deriving it — dropped (``None``) when
        chaos filtering rewrites the edge set after the cache.
        """
        diff = None
        if self._edge_cache is not None:
            edges, diff = self._edge_cache.edges_with_diff(positions)
        else:
            edges = unit_disk_edges(positions, self.sc.r_tx)
        if self._chaos is not None:
            edges = self._chaos.filter_edges(edges, positions)
            diff = None
        return edges, diff

    def _elect(self, positions: np.ndarray, edges: np.ndarray, diff=None):
        """Hierarchy (re-)election on the current topology."""
        if self._maintainer is not None:
            if self.sc.election_mode == "persistent":
                h = self._maintainer.update(
                    np.arange(self.sc.n), edges, positions=positions
                )
            else:
                h = self._maintainer.update(
                    np.arange(self.sc.n),
                    edges,
                    positions=positions if self.sc.level_mode == "radio" else None,
                )
            if self._delta_plane is not None:
                self._delta_plane.adopt(h)
            return h
        if self._delta_plane is not None:
            return self._delta_plane.advance(
                edges,
                positions if self.sc.level_mode == "radio" else None,
                diff=diff,
            )
        return build_hierarchy(
            np.arange(self.sc.n),
            edges,
            max_levels=self.sc.max_levels,
            algorithm=self.sc.clustering,
            maxmin_d=self.sc.maxmin_d,
            level_mode=self.sc.level_mode,
            positions=positions if self.sc.level_mode == "radio" else None,
            r0=self.sc.r_tx if self.sc.level_mode == "radio" else None,
        )

    def _hop_fn(self, positions: np.ndarray, edges: np.ndarray):
        if self.sc.resolved_hop_mode == "bfs":
            return BfsHops(CompactGraph(np.arange(self.sc.n), edges))
        return EuclideanHops(positions, self.sc.r_tx, self.sc.detour)

    # -- pipeline phases ----------------------------------------------------------

    def _start(self, mark=None) -> None:
        """Warmup mobility, then freeze the unmetered baseline snapshot
        and dispatch it to every collector's ``on_start``."""
        sc = self.sc
        for _ in range(sc.warmup):
            self.model.step(sc.dt)
        positions = self.model.positions.copy()
        edges, diff = self._edges(positions)
        hierarchy = self._elect(positions, edges, diff=diff)
        hop_fn = self._hop_fn(positions, edges)
        self._engine.observe(hierarchy, hop_fn)
        snap = StepSnapshot(
            t=0.0, step=-1, positions=positions, edges=edges,
            hierarchy=hierarchy, prev_hierarchy=None, report=None,
            hop_fn=hop_fn, scenario=sc, assignment=self._engine.assignment,
            down=None if self._chaos is None else self._chaos.down_mask(),
        )
        for c in self._collectors:
            c.on_start(snap)
        self._prev_hierarchy = hierarchy
        self._started = True
        if mark is not None:
            mark("setup")

    def _run_step(self, step: int, mark=None) -> None:
        """Advance one metered step through the phase pipeline, then
        dispatch its snapshot to the collectors."""
        sc = self.sc
        self.model.step(sc.dt)
        if self._chaos is not None:
            # Clock first, then sampling (the historical ordering);
            # clusterhead targeting reads the previous step's hierarchy
            # — the heads the network currently depends on.
            self._chaos.advance(sc.dt, self._prev_hierarchy)
            if self._delivery is not None:
                self._delivery.loss = self._chaos.loss_model(self._base_loss)
        positions = self.model.positions.copy()
        if mark is not None:
            mark("mobility")
        edges, diff0 = self._edges(positions)
        if mark is not None:
            mark("rebuild")
        hierarchy = self._elect(positions, edges, diff=diff0)
        if mark is not None:
            mark("hierarchy")
        # Event-plane phase: distill the two latest snapshots into the
        # step's HierarchyDelta.  Metered unconditionally (zero-duration
        # when the plane is off) so profiled runs always report the full
        # canonical phase set.
        delta = None
        if self._delta_plane is not None:
            delta = self._delta_plane.delta()
        if mark is not None:
            mark("delta")
        hop_fn = self._hop_fn(positions, edges)
        report = self._engine.observe(
            hierarchy, hop_fn,
            delivery=self._delivery, now=(step + 1) * sc.dt,
            delta=delta,
        )
        snap = StepSnapshot(
            t=(step + 1) * sc.dt, step=step, positions=positions,
            edges=edges, hierarchy=hierarchy,
            prev_hierarchy=self._prev_hierarchy, report=report,
            hop_fn=hop_fn, scenario=sc, assignment=self._engine.assignment,
            down=None if self._chaos is None else self._chaos.down_mask(),
            delta=delta,
        )
        if mark is not None:
            mark("handoff")
        if mark is None:
            for c in self._collectors:
                c.on_step(snap)
        else:
            for c in self._collectors:
                c.on_step(snap)
                mark(c.phase)
        self._prev_hierarchy = hierarchy

    def _assemble(self) -> SimResult:
        """Collect every collector's ``finalize()`` output into one
        :class:`~repro.sim.metrics.SimResult`."""
        sc = self.sc
        elapsed = sc.steps * sc.dt
        merged: dict = {}
        extras: dict = {}
        for c in self._collectors:
            out = c.finalize(elapsed)
            if isinstance(out, dict):
                for key, value in out.items():
                    if key in _RESULT_FIELDS:
                        merged[key] = value
                    else:
                        extras[key] = value
            elif out is not None:
                extras[getattr(c, "name", type(c).__name__)] = out
        return SimResult(
            scenario=sc,
            elapsed=elapsed,
            final_positions=self.model.positions.copy(),
            timings=self.timings,
            extras=extras,
            **merged,
        )

    # -- main loop -----------------------------------------------------------------

    def run(self, checkpoint_every: int | None = None,
            checkpoint_path=None) -> SimResult:
        """Execute warmup then the metered loop; return all collected metrics.

        When the simulator was built with ``profile=True``, each pipeline
        phase is metered into ``self.timings`` with :func:`time.perf_counter`
        between phase boundaries — pure wall-clock observation, so every
        metric series stays bit-identical to an unprofiled run.

        ``checkpoint_path`` enables periodic checkpointing: the full run
        state is written (atomically) to that path every
        ``checkpoint_every`` metered steps (default 25).  A crashed run
        resumes via :meth:`restore`; the resumed result is identical to
        an uninterrupted run.  On a simulator built by :meth:`restore`,
        ``run()`` continues from the checkpointed step.
        """
        sc = self.sc
        timings = self.timings
        mark = None
        if timings is not None:
            t_wall = t_last = time.perf_counter()

            def mark(phase: str) -> None:
                nonlocal t_last
                now = time.perf_counter()
                timings.add(phase, now - t_last)
                t_last = now

        every = None
        if checkpoint_path is not None:
            every = 25 if checkpoint_every is None else int(checkpoint_every)
            if every < 1:
                raise ValueError("checkpoint_every must be >= 1")
        elif checkpoint_every is not None:
            raise ValueError("checkpoint_every requires checkpoint_path")

        if not self._started:
            self._start(mark)
        for step in range(self._next_step, sc.steps):
            self._run_step(step, mark)
            self._next_step = step + 1
            if timings is not None:
                timings.tick_step()
            if every is not None and self._next_step < sc.steps \
                    and self._next_step % every == 0:
                self.checkpoint(checkpoint_path)
                if timings is not None:
                    # Checkpoint I/O is not a pipeline phase; restart the
                    # chain so it is not charged to the next "mobility".
                    t_last = time.perf_counter()
        if timings is not None:
            timings.wall_seconds += time.perf_counter() - t_wall
        return self._assemble()

    # -- checkpoint / resume -------------------------------------------------------

    def checkpoint(self, path=None) -> SimCheckpoint:
        """Freeze the full mid-run state into a
        :class:`~repro.sim.checkpoint.SimCheckpoint`.

        With ``path``, the checkpoint is also written atomically via
        :func:`repro.persist.save_checkpoint`.  Everything needed for a
        bit-identical continuation is captured: mobility model + RNG,
        handoff/maintainer/delivery state, the chaos engine (crash
        deadlines, episode state, and both its RNG streams), and the
        collector objects (with their own RNG streams).
        """
        from repro.sim.sweep import CODE_VERSION

        ck = SimCheckpoint(
            code_version=CODE_VERSION,
            scenario=self.sc,
            hop_sample_every=self.hop_sample_every,
            next_step=self._next_step,
            started=self._started,
            model=self.model,
            engine=self._engine,
            maintainer=self._maintainer,
            delivery=self._delivery,
            chaos=self._chaos,
            prev_hierarchy=self._prev_hierarchy,
            collectors=self._collectors,
            timings=self.timings,
            trace=self.trace,
            delta_plane=self._delta_plane,
            edge_cache=self._edge_cache,
        )
        if path is not None:
            from repro.persist import save_checkpoint

            save_checkpoint(ck, path)
        return ck

    @classmethod
    def restore(cls, source) -> "Simulator":
        """Rebuild a mid-run simulator from a checkpoint (path or
        :class:`~repro.sim.checkpoint.SimCheckpoint` object).

        The returned simulator continues exactly where the checkpoint
        was taken: calling :meth:`run` yields a result identical to the
        uninterrupted run.  Checkpoints from a different
        :data:`~repro.sim.sweep.CODE_VERSION` are rejected.
        """
        if isinstance(source, SimCheckpoint):
            from repro.sim.sweep import CODE_VERSION

            ck = source
            if ck.code_version != CODE_VERSION:
                raise ValueError(
                    f"checkpoint was written by simulator version "
                    f"{ck.code_version!r}, this is {CODE_VERSION!r} — a "
                    "resumed run would not match an uninterrupted one"
                )
        else:
            from repro.persist import load_checkpoint

            ck = load_checkpoint(source)
        sim = cls.__new__(cls)
        sim.sc = ck.scenario
        sim.hop_sample_every = ck.hop_sample_every
        sim.trace = ck.trace
        sim.timings = ck.timings
        sim._delivery = ck.delivery
        sim._chaos = ck.chaos
        # Derived from the scenario, not checkpointed state.
        sim._base_loss = (
            ck.scenario.loss_model() if ck.delivery is not None else None
        )
        sim.model = ck.model
        sim._maintainer = ck.maintainer
        sim._engine = ck.engine
        sim._collectors = list(ck.collectors)
        sim._prev_hierarchy = ck.prev_hierarchy
        sim._started = ck.started
        sim._next_step = ck.next_step
        sim._delta_plane = ck.delta_plane
        sim._edge_cache = ck.edge_cache
        return sim


def run_scenario(scenario: Scenario, hop_sample_every: int | None = None,
                 profile: bool = False) -> SimResult:
    """Convenience wrapper: build a simulator and run it.

    ``hop_sample_every=None`` (default) uses the scenario's own cadence
    (``scenario.hop_sample_every``) — the same value sweep cache keys
    hash, so direct runs and sweeps agree.  ``profile=True`` attaches
    per-phase wall-clock timings (:class:`repro.obs.StepTimings`) to
    ``result.timings`` — metrics stay bit-identical either way.
    """
    return Simulator(scenario, hop_sample_every=hop_sample_every,
                     profile=profile).run()
