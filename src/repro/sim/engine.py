"""The time-stepped MANET simulator.

One step of the pipeline (Section 1.2's model, end to end):

1. mobility advances node positions (random waypoint by default),
2. the unit-disk graph is rebuilt (k-d tree),
3. the ALCA hierarchy is re-elected recursively,
4. the CHLM handoff engine diffs server assignments and meters packets,
5. trackers record link events (f_0, g_k), ALCA states (p_j), level
   shapes (alpha_k, |E_k|), and sampled hop counts (h, h_k).

Warmup steps run mobility only, letting the RWP spatial distribution mix
before metering starts.
"""

from __future__ import annotations

import time

import numpy as np

from repro.clustering.state import StateTracker
from repro.core.accounting import OverheadLedger
from repro.core.handoff import HandoffEngine
from repro.graphs import CompactGraph
from repro.hierarchy.levels import ClusteredHierarchy, build_hierarchy
from repro.hierarchy.stats import level_hop_counts, mean_hop_count
from repro.mobility import make_model
from repro.radio.linkevents import LinkTracker
from repro.radio.unit_disk import unit_disk_edges
from repro.sim.hops import BfsHops, EuclideanHops
from repro.sim.kernels import (
    EMPTY_IDS,
    EMPTY_KEYS,
    count_drift,
    diff_keys,
    giant_fraction,
    level_edge_keys,
)
from repro.sim.metrics import LevelSeries, SimResult
from repro.sim.rng import spawn_rngs
from repro.sim.scenario import Scenario

__all__ = ["Simulator", "run_scenario"]


class Simulator:
    """Executes one :class:`~repro.sim.scenario.Scenario`."""

    def __init__(self, scenario: Scenario, hop_sample_every: int = 25,
                 trace: bool = False, trace_capacity: int | None = 50_000,
                 profile: bool = False):
        self.sc = scenario
        self.hop_sample_every = max(int(hop_sample_every), 1)
        self.trace = None
        if trace:
            from repro.sim.trace import EventTrace

            self.trace = EventTrace(capacity=trace_capacity)
        # Phase timers (repro.obs): wall-clock only, never an RNG stream,
        # so a profiled run replays bit-identically.  Imported lazily to
        # keep the engine importable while repro.obs initializes.
        self.timings = None
        if profile:
            from repro.obs.timers import StepTimings

            self.timings = StepTimings()
        # "faults" and "queries" are spawned last: SeedSequence.spawn is
        # prefix-stable, so pre-fault scenarios replay bit-identically.
        rngs = spawn_rngs(
            scenario.seed,
            ["placement", "mobility", "sampling", "failures", "faults", "queries"],
        )
        self._sampling_rng = rngs["sampling"]
        self._failure_rng = rngs["failures"]
        self._query_rng = rngs["queries"]
        # Lossy control plane (EXP-A10): built only when the scenario
        # asks for loss, so lossless runs never touch the fault path.
        self._delivery = None
        if scenario.faults_enabled:
            from repro.faults import DeliveryEngine

            self._delivery = DeliveryEngine(
                loss=scenario.loss_model(),
                retry=scenario.retry_policy(),
                rng=rngs["faults"],
            )
        # Crash/repair state: time until which each node stays down.
        self._down_until = np.full(scenario.n, -np.inf)
        self._now = 0.0
        # The mobility model also owns initial placement; hand it the
        # placement stream first so placement is independent of stepping.
        self.model = make_model(
            scenario.mobility,
            scenario.n,
            scenario.region,
            scenario.speed,
            rngs["mobility"],
            **scenario.mobility_kwargs,
        )
        self._maintainer = None
        if scenario.election_mode == "sticky":
            from repro.hierarchy.maintain import HierarchyMaintainer

            self._maintainer = HierarchyMaintainer(
                max_levels=scenario.max_levels,
                level_mode=scenario.level_mode,
                r0=scenario.r_tx if scenario.level_mode == "radio" else None,
            )
        elif scenario.election_mode == "persistent":
            from repro.hierarchy.persistent import PersistentHierarchyMaintainer

            self._maintainer = PersistentHierarchyMaintainer(
                max_levels=scenario.max_levels, r0=scenario.r_tx
            )

    # -- helpers ------------------------------------------------------------------

    def _advance_failures(self, dt: float) -> None:
        """Crash up-nodes at the configured rate (crashed nodes keep
        their identity but lose all links until repaired)."""
        self._now += dt
        if self.sc.failure_rate <= 0:
            return
        up = self._down_until < self._now
        p = -np.expm1(-self.sc.failure_rate * dt)
        crashing = up & (self._failure_rng.random(self.sc.n) < p)
        if np.any(crashing):
            self._down_until[crashing] = self._now + self.sc.repair_time

    def _apply_failures(self, edges: np.ndarray) -> np.ndarray:
        if self.sc.failure_rate <= 0 or edges.size == 0:
            return edges
        down = self._down_until >= self._now
        if not np.any(down):
            return edges
        keep = ~(down[edges[:, 0]] | down[edges[:, 1]])
        return edges[keep]

    def _build(self, positions: np.ndarray):
        edges = self._edges(positions)
        return edges, self._elect(positions, edges)

    def _edges(self, positions: np.ndarray) -> np.ndarray:
        """Unit-disk rebuild (k-d tree) plus crash filtering."""
        return self._apply_failures(unit_disk_edges(positions, self.sc.r_tx))

    def _elect(self, positions: np.ndarray, edges: np.ndarray):
        """Hierarchy (re-)election on the current topology."""
        if self._maintainer is not None:
            if self.sc.election_mode == "persistent":
                h = self._maintainer.update(
                    np.arange(self.sc.n), edges, positions=positions
                )
            else:
                h = self._maintainer.update(
                    np.arange(self.sc.n),
                    edges,
                    positions=positions if self.sc.level_mode == "radio" else None,
                )
            return h
        return build_hierarchy(
            np.arange(self.sc.n),
            edges,
            max_levels=self.sc.max_levels,
            algorithm=self.sc.clustering,
            maxmin_d=self.sc.maxmin_d,
            level_mode=self.sc.level_mode,
            positions=positions if self.sc.level_mode == "radio" else None,
            r0=self.sc.r_tx if self.sc.level_mode == "radio" else None,
        )

    def _hop_fn(self, positions: np.ndarray, edges: np.ndarray):
        if self.sc.resolved_hop_mode == "bfs":
            return BfsHops(CompactGraph(np.arange(self.sc.n), edges))
        return EuclideanHops(positions, self.sc.r_tx, self.sc.detour)

    # -- main loop -----------------------------------------------------------------

    def run(self) -> SimResult:
        """Execute warmup then the metered loop; return all collected metrics.

        When the simulator was built with ``profile=True``, each pipeline
        phase is metered into ``self.timings`` with :func:`time.perf_counter`
        between phase boundaries — pure wall-clock observation, so every
        metric series stays bit-identical to an unprofiled run.
        """
        sc = self.sc
        timings = self.timings
        mark = None
        if timings is not None:
            t_wall = t_last = time.perf_counter()

            def mark(phase: str) -> None:
                nonlocal t_last
                now = time.perf_counter()
                timings.add(phase, now - t_last)
                t_last = now

        for _ in range(sc.warmup):
            self.model.step(sc.dt)

        engine = HandoffEngine(hash_fn=sc.hash_fn)
        ledger = OverheadLedger(n_nodes=sc.n)
        link_tracker = LinkTracker(n=sc.n)
        level_series = LevelSeries()
        state_trackers: dict[int, StateTracker] = {}
        h_network: list[float] = []
        h_levels: dict[int, list[float]] = {}
        degree_sum = 0.0
        giant_sum = 0.0
        giant_samples = 0

        queries = None
        if sc.queries_per_step > 0:
            from repro.faults import QueryLedger

            queries = QueryLedger()

        # Baseline snapshot (not metered).
        positions = self.model.positions.copy()
        edges, hierarchy = self._build(positions)
        engine.observe(hierarchy, self._hop_fn(positions, edges))
        link_tracker.observe(edges)
        prev_level_edges = level_edge_keys(hierarchy, sc.n)
        self._observe_states(state_trackers, hierarchy)
        prev_hierarchy = hierarchy
        if mark is not None:
            mark("setup")

        for step in range(sc.steps):
            self.model.step(sc.dt)
            self._advance_failures(sc.dt)
            positions = self.model.positions.copy()
            if mark is not None:
                mark("mobility")
            edges = self._edges(positions)
            if mark is not None:
                mark("rebuild")
            hierarchy = self._elect(positions, edges)
            if mark is not None:
                mark("hierarchy")
            hop_fn = self._hop_fn(positions, edges)

            report = engine.observe(
                hierarchy, hop_fn,
                delivery=self._delivery, now=(step + 1) * sc.dt,
            )
            ledger.record(report, sc.dt)
            if mark is not None:
                mark("handoff")
            link_tracker.observe(edges)
            if queries is not None:
                self._sample_queries(hierarchy, engine, hop_fn, queries)
            self._observe_states(state_trackers, hierarchy)
            if self.trace is not None:
                t = (step + 1) * sc.dt
                for ev in report.diff.migrations:
                    if ev.pure:
                        self.trace.record(
                            t, "migration", node=ev.node, level=ev.level,
                            old=ev.old_cluster, new=ev.new_cluster,
                        )
                for ev in report.diff.reorgs:
                    self.trace.record(
                        t, f"reorg:{ev.kind.value}", level=ev.level,
                        subject=ev.subject, other=ev.other,
                    )
                if report.total_handoff_packets:
                    self.trace.record(
                        t, "handoff", phi=report.phi_packets,
                        gamma=report.gamma_packets,
                    )

            cur_level_edges = level_edge_keys(hierarchy, sc.n)
            for k in set(cur_level_edges) | set(prev_level_edges):
                before, nodes_before = prev_level_edges.get(k, (EMPTY_KEYS, EMPTY_IDS))
                after, nodes_after = cur_level_edges.get(k, (EMPTY_KEYS, EMPTY_IDS))
                changed = diff_keys(before, after)
                drift = count_drift(changed, sc.n, nodes_before, nodes_after)
                level_series.add_link_events(k, int(changed.size), drift)
            prev_level_edges = cur_level_edges

            for lvl in hierarchy.levels:
                level_series.record_level(lvl.k, lvl.n_nodes, lvl.n_edges)
            for k in range(1, min(prev_hierarchy.num_levels,
                                  hierarchy.num_levels) + 1):
                changed = int(
                    (prev_hierarchy.ancestry(k) != hierarchy.ancestry(k)).sum()
                )
                level_series.add_address_changes(k, changed)
            prev_hierarchy = hierarchy
            degree_sum += 2.0 * len(edges) / sc.n
            if mark is not None:
                mark("diff")

            if step % self.hop_sample_every == 0:
                g = CompactGraph(np.arange(sc.n), edges)
                h_network.append(mean_hop_count(g, self._sampling_rng, n_sources=8))
                for k, val in level_hop_counts(
                    hierarchy, g, self._sampling_rng,
                    clusters_per_level=6, sources_per_cluster=2,
                ).items():
                    if val > 0:
                        h_levels.setdefault(k, []).append(val)
                giant_sum += giant_fraction(g)
                giant_samples += 1
                if mark is not None:
                    mark("sampling")
            if timings is not None:
                timings.tick_step()

        elapsed = sc.steps * sc.dt
        if timings is not None:
            timings.wall_seconds = time.perf_counter() - t_wall
        return SimResult(
            scenario=sc,
            ledger=ledger,
            f0=link_tracker.events_per_node_per_second(elapsed),
            level_series=level_series,
            state_stats={
                j: t.stats() for j, t in state_trackers.items() if t.samples > 0
            },
            h_network=h_network,
            h_levels=h_levels,
            mean_degree=degree_sum / sc.steps,
            giant_fraction=giant_sum / giant_samples if giant_samples else 0.0,
            elapsed=elapsed,
            trace=self.trace,
            final_positions=positions,
            queries=queries,
            timings=timings,
        )

    def _sample_queries(self, hierarchy, engine, hop_fn, ledger) -> None:
        """Sample location queries through the (possibly lossy) stack.

        Uses the engine's *effective* assignment, so probes that land on
        abandoned/stale entries miss; failed queries fall back to an
        expanding-ring flood — successful but metered as degradation.
        Unreachable targets (partitioned network) fail outright.
        """
        from repro.core.query import resolve
        from repro.faults import expanding_ring_cost

        sc = self.sc
        assignment = engine.assignment
        for _ in range(sc.queries_per_step):
            pair = self._query_rng.integers(0, sc.n, size=2)
            s, d = int(pair[0]), int(pair[1])
            qr = resolve(
                hierarchy, assignment, s, d, hop_fn,
                hash_fn=sc.hash_fn, delivery=self._delivery,
            )
            if qr.hit_level >= 0:
                ledger.record_direct(qr.packets)
                continue
            target_hops = hop_fn(s, d)
            if target_hops > 0:
                flood = expanding_ring_cost(
                    target_hops, sc.n, sc.density, sc.r_tx
                )
                ledger.record_fallback(qr.packets, flood)
            else:
                ledger.record_failure(qr.packets)
        ledger.close_step()

    @staticmethod
    def _observe_states(trackers: dict[int, StateTracker], h: ClusteredHierarchy) -> None:
        for lvl in h.levels:
            if lvl.election is None:
                continue
            trackers.setdefault(lvl.k, StateTracker()).observe(lvl.election)


def run_scenario(scenario: Scenario, hop_sample_every: int = 25,
                 profile: bool = False) -> SimResult:
    """Convenience wrapper: build a simulator and run it.

    ``profile=True`` attaches per-phase wall-clock timings
    (:class:`repro.obs.StepTimings`) to ``result.timings`` — metrics stay
    bit-identical either way.
    """
    return Simulator(scenario, hop_sample_every=hop_sample_every,
                     profile=profile).run()
