"""Zero-copy shared-memory transport for sweep results.

Parallel sweeps ship one ``SimResult`` per task from worker to parent.
The default transport pickles the whole object through the executor's
result pipe, which copies every trajectory/series array twice (worker
serialize, parent deserialize).  At 10^5 nodes a single result carries
tens of megabytes of ndarrays and the pipe becomes the bottleneck.

This module provides the alternative: workers pack each result with
:func:`pack_result`, which pickles the object normally but intercepts
every large C-contiguous ndarray (``persistent_id`` hook) and writes
its bytes into ONE ``multiprocessing.shared_memory`` segment instead.
Only the small pickle skeleton plus ``(segment, specs)`` metadata
crosses the pipe; the parent maps the segment, restores the arrays
with :func:`unpack_result`, and unlinks it.

POSIX details handled here:

* Segment lifetime is explicit: exactly one process unlinks each
  segment (the parent after unpack, or the orphan sweep).  CPython's
  ``resource_tracker`` keeps a *set* of names shared across forked
  workers, and ``unlink()`` unregisters — so one unlink per name
  leaves the tracker clean with no double-free warnings.
* A worker killed between ``pack_result`` and the parent's unlink
  leaks its segment.  Segments carry a per-sweep prefix so
  :func:`cleanup_segments` can sweep ``/dev/shm`` for orphans in the
  sweep's ``finally`` block.
"""

from __future__ import annotations

import contextvars
import io
import os
import pickle
import secrets
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ARRAY_THRESHOLD",
    "SHM_PREFIX",
    "ShmPayload",
    "SharedArrayPool",
    "cleanup_segments",
    "pack_result",
    "shm_available",
    "sweep_prefix",
    "unpack_result",
]

# Arrays below this many bytes ride the ordinary pickle; the shm
# segment + mmap round trip only pays for itself on big blocks.
ARRAY_THRESHOLD = 1 << 16

# Namespace for every segment this package creates; cleanup scans are
# restricted to it so unrelated /dev/shm entries are never touched.
SHM_PREFIX = "repro_sweep"


def shm_available() -> bool:
    """True when POSIX shared memory actually works on this host.

    Probes once per process by creating and unlinking a tiny segment
    (containers sometimes mount /dev/shm noexec/ro or drop it).
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=16)
            seg.close()
            seg.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


_AVAILABLE: bool | None = None


def sweep_prefix() -> str:
    """A fresh per-sweep segment namespace, e.g.
    ``repro_sweep_3f2a90_1234``; unique so concurrent sweeps (and
    stale orphans from crashed ones) never collide."""
    return f"{SHM_PREFIX}_{secrets.token_hex(3)}_{os.getpid() % 100000}"


@dataclass(frozen=True)
class _ArraySpec:
    """Where one ndarray lives inside a segment."""

    dtype: str
    shape: tuple[int, ...]
    offset: int
    nbytes: int


@dataclass
class ShmPayload:
    """The cross-pipe stand-in for a packed result: the pickle
    skeleton plus the shm segment holding the extracted arrays."""

    segment: str
    skeleton: bytes
    specs: tuple[_ArraySpec, ...]
    total_bytes: int


@dataclass
class SharedArrayPool:
    """Publish/attach named groups of ndarrays through one shared
    segment each.

    ``publish`` copies the arrays into a fresh segment and returns its
    name; ``attach`` maps them back as zero-copy views (valid while
    the pool stays open).  ``close`` releases every mapping and
    unlinks every segment this pool created.
    """

    prefix: str = field(default_factory=sweep_prefix)
    _seq: int = 0
    _open: dict = field(default_factory=dict)
    _created: list = field(default_factory=list)

    def publish(self, arrays: dict[str, np.ndarray]) -> tuple[str, dict]:
        """Write ``arrays`` into a new segment; returns
        ``(segment_name, specs)`` to hand to :meth:`attach`."""
        from multiprocessing import shared_memory

        items = [(k, np.ascontiguousarray(v)) for k, v in arrays.items()]
        total = sum(a.nbytes for _, a in items)
        name = f"{self.prefix}_{self._seq}"
        self._seq += 1
        seg = shared_memory.SharedMemory(
            create=True, size=max(total, 1), name=name
        )
        specs = {}
        offset = 0
        for key, arr in items:
            if arr.nbytes:
                seg.buf[offset:offset + arr.nbytes] = arr.tobytes()
            specs[key] = _ArraySpec(
                str(arr.dtype), tuple(arr.shape), offset, arr.nbytes
            )
            offset += arr.nbytes
        self._open[name] = seg
        self._created.append(name)
        return name, specs

    def attach(self, name: str, specs: dict) -> dict[str, np.ndarray]:
        """Map ``name`` and return zero-copy views per ``specs``; the
        views stay valid until :meth:`close`."""
        from multiprocessing import shared_memory

        seg = self._open.get(name)
        if seg is None:
            seg = shared_memory.SharedMemory(name=name)
            self._open[name] = seg
        out = {}
        for key, spec in specs.items():
            view = np.frombuffer(
                seg.buf, dtype=np.dtype(spec.dtype),
                count=spec.nbytes // max(np.dtype(spec.dtype).itemsize, 1),
                offset=spec.offset,
            )
            out[key] = view.reshape(spec.shape)
        return out

    def close(self) -> None:
        """Release every mapping; unlink every segment we created."""
        for name, seg in list(self._open.items()):
            try:
                seg.close()
            except Exception:
                pass
            if name in self._created:
                try:
                    seg.unlink()
                except Exception:
                    pass
        self._open.clear()
        self._created.clear()


class _ArrayPickler(pickle.Pickler):
    """Pickler that diverts big contiguous ndarrays out of the stream,
    recording them for segment placement.

    Uses ``reducer_override`` (not ``persistent_id``) so each array's
    *dtype object* still travels through the pickle stream: numpy's
    native dtypes are singletons, and keeping them in-stream preserves
    the pickle memo sharing between extracted and in-skeleton arrays.
    The restored object therefore re-pickles to byte-identical output
    whether it crossed the pipe as plain pickle or through shm — which
    is what keeps sweep cache files transport-independent.
    """

    def __init__(self, buf, threshold: int):
        super().__init__(buf, protocol=pickle.HIGHEST_PROTOCOL)
        self.threshold = threshold
        self.arrays: list[np.ndarray] = []

    def reducer_override(self, obj):
        if (
            type(obj) is np.ndarray
            and obj.nbytes >= self.threshold
            and obj.flags["C_CONTIGUOUS"]
            and obj.dtype != object
        ):
            self.arrays.append(obj)
            return (
                _from_segment,
                (len(self.arrays) - 1, obj.dtype, obj.shape),
            )
        return NotImplemented


_UNPACK_ARRAYS: "contextvars.ContextVar[list[bytes]]" = (
    contextvars.ContextVar("repro_shm_unpack_arrays")
)


def _from_segment(index: int, dtype, shape) -> np.ndarray:
    """Unpickle-side constructor for an extracted array: reads the raw
    bytes staged by :func:`unpack_result` and rebuilds an owned,
    writable ndarray (``frombuffer`` on bytes is read-only)."""
    raw = _UNPACK_ARRAYS.get()[index]
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def pack_result(obj, prefix: str, threshold: int = ARRAY_THRESHOLD):
    """Serialize ``obj`` with its large ndarrays placed in one shared
    segment.  Returns a :class:`ShmPayload`, or the plain pickled
    bytes when nothing crossed the threshold (no segment created) or
    segment creation failed (graceful pipe fallback)."""
    from multiprocessing import shared_memory

    buf = io.BytesIO()
    pickler = _ArrayPickler(buf, threshold)
    pickler.dump(obj)
    skeleton = buf.getvalue()
    if not pickler.arrays:
        return skeleton
    total = sum(a.nbytes for a in pickler.arrays)
    name = f"{prefix}_{os.getpid()}_{secrets.token_hex(2)}"
    try:
        seg = shared_memory.SharedMemory(create=True, size=total, name=name)
    except Exception:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    specs = []
    offset = 0
    for arr in pickler.arrays:
        seg.buf[offset:offset + arr.nbytes] = arr.tobytes()
        specs.append(
            _ArraySpec(str(arr.dtype), tuple(arr.shape), offset, arr.nbytes)
        )
        offset += arr.nbytes
    seg.close()
    return ShmPayload(
        segment=name, skeleton=skeleton, specs=tuple(specs),
        total_bytes=total,
    )


def unpack_result(payload):
    """Restore an object shipped by :func:`pack_result`.  Accepts the
    plain-bytes fallback too.  Copies the arrays out of the segment,
    then closes and unlinks it — the returned object owns its data."""
    if isinstance(payload, (bytes, bytearray)):
        return pickle.loads(payload)
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(name=payload.segment)
    try:
        # bytes() copies out of the mmap so no exported pointers
        # survive into close(); _from_segment then builds each array
        # from its slice during the skeleton unpickle below.
        raws = [
            bytes(seg.buf[spec.offset:spec.offset + spec.nbytes])
            for spec in payload.specs
        ]
        token = _UNPACK_ARRAYS.set(raws)
        try:
            return pickle.loads(payload.skeleton)
        finally:
            _UNPACK_ARRAYS.reset(token)
    finally:
        seg.close()
        try:
            seg.unlink()
        except Exception:
            pass


def cleanup_segments(prefix: str) -> int:
    """Unlink every leftover ``/dev/shm`` segment under ``prefix``
    (workers killed mid-flight leak theirs); returns the count."""
    from multiprocessing import shared_memory

    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return 0
    removed = 0
    for entry in os.listdir(shm_dir):
        if not entry.startswith(prefix):
            continue
        try:
            seg = shared_memory.SharedMemory(name=entry)
            seg.close()
            seg.unlink()
            removed += 1
        except Exception:
            pass
    return removed
