"""Deterministic RNG management.

Every stochastic component (placement, mobility, sampling estimators)
gets an independent child generator derived from the scenario seed, so
runs replay exactly and components can be swapped without perturbing each
other's streams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_rngs"]


def spawn_rngs(seed: int, names: list[str]) -> dict[str, np.random.Generator]:
    """Independent named generators from one root seed.

    Child sequences are derived with ``SeedSequence.spawn``, which
    guarantees statistical independence between the streams.
    """
    if not names:
        raise ValueError("need at least one stream name")
    if len(set(names)) != len(names):
        raise ValueError("stream names must be unique")
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(names))
    return {name: np.random.default_rng(child) for name, child in zip(names, children)}
