"""Simulation engine: scenario config, phased step pipeline, pluggable
collectors, checkpoint/resume, result views."""

from repro.sim.checkpoint import SimCheckpoint
from repro.sim.collectors import (
    Collector,
    HopSampleCollector,
    LedgerCollector,
    LevelSeriesCollector,
    LinkEventCollector,
    QueryCollector,
    ServiceCollector,
    StateCollector,
    TraceCollector,
)
from repro.sim.engine import Simulator, run_scenario
from repro.sim.hops import BfsHops, EuclideanHops
from repro.sim.metrics import LevelSeries, SimResult
from repro.sim.presets import PRESETS, make_scenario
from repro.sim.rng import spawn_rngs
from repro.sim.scenario import Scenario
from repro.sim.snapshot import StepSnapshot
from repro.sim.sweep import (
    CODE_VERSION,
    SweepError,
    SweepProgress,
    SweepRun,
    TaskError,
    cached_sweep,
    default_cache_dir,
    expand_grid,
    normalize_for_json,
    parallel_map,
    print_progress,
    run_sweep,
    run_sweep_detailed,
    scenario_key,
)
from repro.sim.trace import EventTrace, TraceEvent

__all__ = [
    "Simulator",
    "run_scenario",
    "StepSnapshot",
    "SimCheckpoint",
    "Collector",
    "LedgerCollector",
    "LinkEventCollector",
    "LevelSeriesCollector",
    "StateCollector",
    "HopSampleCollector",
    "TraceCollector",
    "QueryCollector",
    "ServiceCollector",
    "BfsHops",
    "EuclideanHops",
    "LevelSeries",
    "SimResult",
    "spawn_rngs",
    "PRESETS",
    "make_scenario",
    "Scenario",
    "EventTrace",
    "TraceEvent",
    "CODE_VERSION",
    "SweepError",
    "SweepProgress",
    "SweepRun",
    "TaskError",
    "cached_sweep",
    "default_cache_dir",
    "expand_grid",
    "normalize_for_json",
    "parallel_map",
    "print_progress",
    "run_sweep",
    "run_sweep_detailed",
    "scenario_key",
]
