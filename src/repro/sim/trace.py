"""Structured event traces.

An optional recorder the simulator fills with one entry per noteworthy
occurrence — handoff events, elections/rejections, cluster link changes
— so examples and debugging sessions can replay *why* packets were
charged.  Traces are plain data (no behavior coupling): the simulator
works identically with recording off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceEvent", "EventTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One trace entry."""

    t: float
    kind: str
    payload: dict[str, Any]

    def __str__(self) -> str:
        items = ", ".join(f"{k}={v}" for k, v in sorted(self.payload.items()))
        return f"[t={self.t:8.2f}] {self.kind:18s} {items}"


@dataclass
class EventTrace:
    """Bounded event log (ring buffer) with filtering and summarization.

    At ``capacity`` the *oldest* events are evicted (and counted in
    ``dropped``), so a saturated trace always holds the most recent
    window — matching :meth:`to_lines`'s "most recent last" rendering.
    """

    events: "deque[TraceEvent]" = field(default_factory=deque)
    capacity: int | None = None
    dropped: int = 0

    def __post_init__(self):
        maxlen = None if self.capacity is None else max(int(self.capacity), 0)
        self.events = deque(self.events, maxlen=maxlen)

    def record(self, t: float, kind: str, **payload) -> None:
        """Append one event; at ``capacity`` the oldest event is evicted
        (counted in ``dropped``) so the newest events always survive."""
        if self.events.maxlen is not None and len(self.events) == self.events.maxlen:
            self.dropped += 1
        self.events.append(TraceEvent(t=float(t), kind=str(kind), payload=payload))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def filter(self, kind: str | None = None,
               t_min: float | None = None,
               t_max: float | None = None) -> list[TraceEvent]:
        """Events matching the given kind and/or time window."""
        out = []
        for ev in self.events:
            if kind is not None and ev.kind != kind:
                continue
            if t_min is not None and ev.t < t_min:
                continue
            if t_max is not None and ev.t > t_max:
                continue
            out.append(ev)
        return out

    def summary(self) -> dict[str, int]:
        """Event counts by kind."""
        counts: dict[str, int] = {}
        for ev in self.events:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return dict(sorted(counts.items()))

    def to_lines(self, limit: int | None = None) -> list[str]:
        """Human-readable rendering (most recent last)."""
        evs = list(self.events)
        if limit is not None:
            evs = evs[-limit:]
        lines = [str(ev) for ev in evs]
        if self.dropped:
            lines.append(f"... ({self.dropped} events dropped at capacity)")
        return lines

    def to_jsonl(self, path_or_file) -> int:
        """Write the trace as JSON Lines (header record + one record per
        event) to a path or open text file; returns the record count.
        See :mod:`repro.obs.export` for the schema and the reader."""
        from repro.obs.export import trace_records, write_jsonl

        return write_jsonl(path_or_file, trace_records(self))

    @classmethod
    def from_jsonl(cls, path_or_file) -> "EventTrace":
        """Rebuild a trace written by :meth:`to_jsonl`."""
        from repro.obs.export import read_jsonl, trace_from_records

        return trace_from_records(read_jsonl(path_or_file))
