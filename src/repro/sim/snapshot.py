"""Immutable per-step view of the simulation pipeline.

Each metered step, the engine advances its phases (mobility -> unit-disk
rebuild -> hierarchy election -> handoff diff) and then freezes the
step's outputs into one :class:`StepSnapshot`, which is dispatched to
every registered collector (see :mod:`repro.sim.collectors`).  The
snapshot is the *entire* contract between the stepping plane and the
measurement plane: collectors read it, never the engine.

The snapshot is immutable by convention (frozen dataclass); the arrays
and hierarchy objects it references are the engine's working copies and
must not be mutated by collectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.sim.scenario import Scenario

__all__ = ["StepSnapshot"]


@dataclass(frozen=True)
class StepSnapshot:
    """Everything one pipeline step produced, frozen for collectors.

    Attributes
    ----------
    t:
        Simulated time at the end of this step, in seconds.
    step:
        Metered step index (``0 .. steps-1``).  The baseline snapshot
        passed to ``Collector.on_start`` uses ``step == -1``.
    positions:
        Node positions after this step's mobility phase, shape (n, 2).
    edges:
        Unit-disk link list after crash filtering, shape (m, 2).
    hierarchy:
        The :class:`~repro.hierarchy.levels.ClusteredHierarchy` elected
        on this step's topology.
    prev_hierarchy:
        The previous step's hierarchy (``None`` on the baseline
        snapshot) — lets collectors diff addresses across steps.
    report:
        The step's :class:`~repro.core.handoff.HandoffReport` (``None``
        on the baseline snapshot, which precedes any handoff).
    hop_fn:
        Hop-count oracle ``(s, d) -> hops`` for this step's topology
        (:class:`~repro.sim.hops.BfsHops` or
        :class:`~repro.sim.hops.EuclideanHops`).
    scenario:
        The run's immutable :class:`~repro.sim.scenario.Scenario`.
    assignment:
        The handoff engine's *effective* server assignment after
        observing this step (stale entries from abandoned transfers
        included), for query-style collectors.
    down:
        Boolean per-node crash mask from the chaos engine (``None``
        when the run injects no faults — the mask then would be
        all-False).  Crashed nodes keep their identity but hold no
        links in ``edges``.
    delta:
        The step's :class:`~repro.hierarchy.delta.HierarchyDelta`
        (``None`` when the run does not use the event-driven hierarchy
        plane, and on the baseline snapshot).  Collectors may use its
        dirty sets to scope their own diffs.
    """

    t: float
    step: int
    positions: np.ndarray
    edges: np.ndarray
    hierarchy: Any
    prev_hierarchy: Any
    report: Any
    hop_fn: Any
    scenario: Scenario
    assignment: Any
    down: np.ndarray | None = None
    delta: Any = None
