"""Simulation scenario configuration.

Defaults follow the paper's model assumptions (Section 1.2): fixed node
density (area grows with |V|), unit-disk links sized for a constant
target degree, random-waypoint mobility with zero pause, ALCA clustering
recursed to the top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.region import DiscRegion, disc_for_density
from repro.radio.connectivity import radius_for_degree

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """Immutable description of one simulation run.

    Parameters
    ----------
    n:
        Node count |V|.
    density:
        Nodes per square meter; the disc area is n/density, realizing the
        paper's fixed-density scaling.
    target_degree:
        Expected unit-disk degree; sets R_tx = sqrt(d / (pi * density)).
        The paper's reference [2] motivates values around 6-9.
    speed:
        Node speed mu in m/s (scalar, or (low, high) uniform range).
    dt:
        Step duration in seconds.  Should be small enough that a node
        moves a fraction of R_tx per step (the adjacent-transition regime
        of Fig. 3).
    steps:
        Metered steps (after warmup).
    warmup:
        Steps run before metering starts (RWP mixing + baseline).
    mobility:
        Mobility registry name ("random_waypoint", "random_direction",
        "group", "stationary").
    mobility_kwargs:
        Extra arguments for the mobility model.
    clustering:
        "lca" (paper) or "maxmin" (baseline ablation).
    maxmin_d:
        Radius for max-min clustering.
    max_levels:
        Cap on hierarchy depth (None: recurse fully, L = Theta(log n)).
    level_mode:
        Level-k link construction: "radio" (geometric clusterhead links,
        the paper's Section 5.3.1 model; default) or "contraction"
        (cluster-adjacency links; ablation — high-level links flicker).
    election_mode:
        "memoryless" re-elects every level from scratch each step (the
        declarative ALCA reading); "sticky" maintains affiliations with
        LCC hysteresis across steps (the deployed-protocol reading, see
        EXP-A1); "persistent" additionally decouples cluster identity
        from the head role — cids survive head handover (the structural
        fix EXPERIMENTS.md identifies; see EXP-A5).
    hash_fn:
        CHLM hash ("rendezvous" or "naive").
    hop_mode:
        "bfs" for exact hop metering, "euclidean" for the fast distance
        estimator, "auto" to pick by size.
    detour:
        Euclidean estimator detour factor (hops ~ detour * dist / R_tx).
    failure_rate:
        Per-node crash rate (1/s).  The paper *excludes* node birth and
        death ("extremely rare"); nonzero rates quantify that excluded
        factor (EXP-A3).  A crashed node keeps its identity but loses
        all links until repaired.
    repair_time:
        Downtime per crash, in seconds.
    loss_rate:
        Per-hop control-packet loss probability in [0, 1).  The paper
        assumes lossless delivery; nonzero rates inject the lossy
        channel of EXP-A10 (see ``repro.faults`` and ROBUSTNESS.md).
        0 disables fault injection entirely (bit-identical metering).
    loss_level_coeff:
        Optional level dependence of the channel: a level-k message sees
        an effective per-hop loss of ``loss_rate * (1 + coeff * k)``.
    retry_attempts:
        Total delivery tries per control message, including the first
        (1 disables retransmission).
    retry_backoff:
        Delay before the first retransmission, in seconds.
    retry_backoff_factor:
        Exponential backoff multiplier per further retransmission.
    retry_jitter:
        Multiplicative backoff jitter (0 disables).
    retry_timeout:
        Per-message give-up budget in seconds; messages whose
        accumulated backoff would exceed it are abandoned.
    queries_per_step:
        Location queries sampled per metered step (random s-d pairs,
        resolved through the lossy stack with expanding-ring fallback).
        0 (default) samples none, leaving all metered series untouched.
    chaos:
        Fault schedule: a tuple of :mod:`repro.faults.chaos` episodes
        (``CrashEpisode`` / ``PartitionEpisode`` / ``LossBurstEpisode``)
        or their ``"kind:key=value,..."`` spec strings (parsed at
        construction).  Empty (default) injects nothing and is
        guaranteed bit-identical to a chaos-free engine.  All episode
        randomness comes from the dedicated ``"chaos"`` RNG stream.
    invariant_mode:
        Per-step hierarchy invariant checking (see
        :mod:`repro.faults.invariants`): ``"auto"`` (default) checks
        exactly when fault injection is on, ``"count"`` always checks,
        ``"strict"`` raises on the first violation, ``"off"`` never
        checks.
    slo_success_threshold:
        Query success rate an episode's recovery must recross before
        the run counts as reconverged (only binds when the scenario
        samples queries).
    slo_window:
        Consecutive converged steps required to declare recovery.
    arrival_rate:
        Open-loop service load in requests per simulated second
        (lookups plus updates), driven by ``repro.service``.  0
        (default) disables service mode entirely — the engine is then
        bit-identical to one without the service plane.  Arrivals draw
        only from the dedicated ``"service"`` RNG stream.
    arrival_process:
        Arrival process shape: ``"poisson"`` (homogeneous), ``"diurnal"``
        (sinusoidally modulated rate), or ``"hotspot"`` (Poisson
        arrivals with Zipf-skewed targets).
    admission_rate:
        Token-bucket admission limit in requests per simulated second;
        arrivals past the bucket are shed before queueing.  0 (default)
        admits everything.
    service_workers:
        Servers in the deterministic queueing model *and* threads in
        the wall-clock dispatcher.
    service_queue_capacity:
        Bounded FIFO backlog; admitted requests arriving to a full
        queue are dropped (backpressure).
    service_hop_time:
        Simulated seconds charged per control packet when converting a
        request's packet count into service time.
    service_update_fraction:
        Fraction of arrivals that are location *updates* (re-register
        the target's servers); the rest are lookups.
    service_scheme:
        Location scheme the front-end resolves against: ``"chlm"``
        (default; the live CHLM assignment) or ``"gls"`` (a Grid
        Location Service maintained alongside the run).
    hop_sample_every:
        Hop/giant-component sampling cadence: sample every k-th metered
        step (step 0 always samples).  Part of the scenario — and thus
        of the sweep cache key — so direct runs and sweeps agree on the
        default.  Mean hop sampling is the costliest per-step observation
        (BFS from several sources); raise the cadence for wide sweeps
        (see docs/PERFORMANCE.md), lower it when h/h_k accuracy matters.
    incremental_hierarchy:
        Run the event-driven hierarchy plane (see
        :mod:`repro.hierarchy.delta` and docs/ARCHITECTURE.md): the ALCA
        hierarchy is patched from link deltas instead of rebuilt, the
        unit-disk graph is maintained by a Verlet-style candidate cache,
        and the handoff engine re-hashes only dirty descent chains.
        Guaranteed bit-identical to the full-rebuild pipeline (the
        equivalence matrix in ``tests/sim/test_incremental_equivalence``
        covers plain/lossy/chaos/resume); requires lca clustering and
        the rendezvous hash.  Part of the scenario, so cached sweeps key
        the two pipelines separately.
    verlet_skin:
        Candidate-radius inflation factor for the incremental pipeline's
        Verlet edge cache (ignored otherwise).  Candidates live within
        ``r_tx * (1 + skin)`` and the k-d tree is rebuilt only after any
        node drifts ``skin * r_tx / 2`` from its build-time position, so
        with per-step displacement ``s`` a rebuild amortizes over
        ``~skin * r_tx / (2 s)`` steps; see docs/PERFORMANCE.md for the
        arithmetic against the stock speeds.  Must be positive — zero
        would rebuild every step.  Output is bit-identical for every
        valid value; only rebuild frequency (and thus speed) changes.
    seed:
        Root seed for all randomness.
    """

    n: int = 200
    density: float = 0.02
    target_degree: float = 9.0
    speed: float | tuple[float, float] = 5.0
    dt: float = 1.0
    steps: int = 100
    warmup: int = 10
    mobility: str = "random_waypoint"
    mobility_kwargs: dict = field(default_factory=dict)
    clustering: str = "lca"
    maxmin_d: int = 2
    level_mode: str = "radio"
    election_mode: str = "memoryless"
    max_levels: int | None = None
    hash_fn: str = "rendezvous"
    hop_mode: str = "auto"
    detour: float = 1.3
    failure_rate: float = 0.0
    repair_time: float = 20.0
    loss_rate: float = 0.0
    loss_level_coeff: float = 0.0
    retry_attempts: int = 1
    retry_backoff: float = 0.05
    retry_backoff_factor: float = 2.0
    retry_jitter: float = 0.1
    retry_timeout: float = 1.0
    queries_per_step: int = 0
    arrival_rate: float = 0.0
    arrival_process: str = "poisson"
    admission_rate: float = 0.0
    service_workers: int = 4
    service_queue_capacity: int = 512
    service_hop_time: float = 0.002
    service_update_fraction: float = 0.2
    service_scheme: str = "chlm"
    chaos: tuple = ()
    invariant_mode: str = "auto"
    slo_success_threshold: float = 0.9
    slo_window: int = 3
    hop_sample_every: int = 25
    incremental_hierarchy: bool = False
    verlet_skin: float = 0.5
    seed: int = 0

    # Numeric fields screened for NaN/inf before any range check runs
    # (range checks silently pass on NaN: ``nan < 1`` is False).
    _NUMERIC_FIELDS = (
        "density", "target_degree", "dt", "detour", "failure_rate",
        "repair_time", "loss_rate", "loss_level_coeff", "retry_attempts",
        "retry_backoff", "retry_backoff_factor", "retry_jitter",
        "retry_timeout", "queries_per_step", "arrival_rate",
        "admission_rate", "service_workers", "service_queue_capacity",
        "service_hop_time", "service_update_fraction",
        "slo_success_threshold", "slo_window", "hop_sample_every",
        "verlet_skin",
    )

    def __post_init__(self):
        for name in self._NUMERIC_FIELDS:
            value = getattr(self, name)
            if not np.isfinite(value):
                raise ValueError(
                    f"{name} must be a finite number, got {value!r} "
                    "(NaN/inf would silently poison every derived metric)"
                )
        speeds = (self.speed,) if np.isscalar(self.speed) else tuple(self.speed)
        if not all(np.isfinite(v) for v in speeds):
            raise ValueError(
                f"speed must be finite (scalar or (low, high)), got {self.speed!r}"
            )
        if self.n <= 1:
            raise ValueError("need at least two nodes")
        if self.density <= 0:
            raise ValueError("density must be positive")
        if self.target_degree <= 0:
            raise ValueError("target degree must be positive")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.steps < 1:
            raise ValueError(
                f"steps must be >= 1, got {self.steps!r}: with zero metered "
                "steps every per-step rate (mean_degree, phi, gamma) would "
                "divide by zero — use warmup for unmetered mixing instead"
            )
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.hop_mode not in ("bfs", "euclidean", "auto"):
            raise ValueError("hop_mode must be bfs, euclidean, or auto")
        if self.level_mode not in ("radio", "contraction"):
            raise ValueError("level_mode must be radio or contraction")
        if self.election_mode not in ("memoryless", "sticky", "persistent"):
            raise ValueError(
                "election_mode must be memoryless, sticky, or persistent"
            )
        if self.election_mode != "memoryless" and self.clustering != "lca":
            raise ValueError("stateful elections require lca clustering")
        if self.election_mode == "persistent" and self.level_mode != "radio":
            raise ValueError("persistent clusters require radio level_mode")
        if self.detour < 1.0:
            raise ValueError("detour factor must be >= 1")
        if self.verlet_skin <= 0:
            raise ValueError(
                f"verlet_skin must be positive, got {self.verlet_skin!r} "
                "(0 would rebuild the candidate tree every step; disable "
                "incremental_hierarchy instead)"
            )
        if self.failure_rate < 0:
            raise ValueError("failure rate must be non-negative")
        if self.repair_time <= 0:
            raise ValueError(
                f"repair time must be positive, got {self.repair_time!r} "
                "(a crashed node needs a finite downtime to recover from)"
            )
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(
                f"loss_rate must be a probability in [0, 1), got "
                f"{self.loss_rate!r} (1.0 would mean no control packet "
                "ever survives a hop)"
            )
        if self.loss_level_coeff < 0:
            raise ValueError(
                f"loss_level_coeff must be non-negative, got "
                f"{self.loss_level_coeff!r}"
            )
        if self.retry_attempts < 1:
            raise ValueError(
                f"retry_attempts must be >= 1 (1 disables retries), got "
                f"{self.retry_attempts!r}"
            )
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be non-negative, got {self.retry_backoff!r}"
            )
        if self.retry_backoff_factor < 1.0:
            raise ValueError(
                f"retry_backoff_factor must be >= 1, got "
                f"{self.retry_backoff_factor!r}"
            )
        if self.retry_jitter < 0:
            raise ValueError(
                f"retry_jitter must be non-negative, got {self.retry_jitter!r}"
            )
        if self.retry_timeout <= 0:
            raise ValueError(
                f"retry_timeout must be positive, got {self.retry_timeout!r}"
            )
        if self.queries_per_step < 0:
            raise ValueError(
                f"queries_per_step must be non-negative, got "
                f"{self.queries_per_step!r}"
            )
        if self.arrival_rate < 0:
            raise ValueError(
                f"arrival_rate must be non-negative, got "
                f"{self.arrival_rate!r} (0 disables service mode)"
            )
        if self.arrival_process not in ("poisson", "diurnal", "hotspot"):
            raise ValueError(
                f"arrival_process must be poisson, diurnal, or hotspot, "
                f"got {self.arrival_process!r}"
            )
        if self.admission_rate < 0:
            raise ValueError(
                f"admission_rate must be non-negative, got "
                f"{self.admission_rate!r} (0 admits everything)"
            )
        if self.service_workers < 1:
            raise ValueError(
                f"service_workers must be >= 1, got {self.service_workers!r}"
            )
        if self.service_queue_capacity < 1:
            raise ValueError(
                f"service_queue_capacity must be >= 1, got "
                f"{self.service_queue_capacity!r} (an unbuffered service "
                "would drop every request that finds all workers busy)"
            )
        if self.service_hop_time <= 0:
            raise ValueError(
                f"service_hop_time must be positive, got "
                f"{self.service_hop_time!r}"
            )
        if not 0.0 <= self.service_update_fraction <= 1.0:
            raise ValueError(
                f"service_update_fraction must be in [0, 1], got "
                f"{self.service_update_fraction!r}"
            )
        if self.service_scheme not in ("chlm", "gls"):
            raise ValueError(
                f"service_scheme must be chlm or gls, got "
                f"{self.service_scheme!r}"
            )
        if self.hop_sample_every < 1:
            raise ValueError(
                f"hop_sample_every must be >= 1, got "
                f"{self.hop_sample_every!r} (1 samples every metered step)"
            )
        if self.incremental_hierarchy:
            if self.clustering != "lca":
                raise ValueError(
                    "incremental_hierarchy patches LCA elections; "
                    f"clustering={self.clustering!r} has no delta plane"
                )
            if self.hash_fn != "rendezvous":
                raise ValueError(
                    "incremental_hierarchy patches rendezvous descent "
                    f"chains; hash_fn={self.hash_fn!r} is not supported"
                )
        # Chaos episodes: spec strings are parsed here (each episode
        # dataclass validates its own window/rates with actionable
        # messages), so a malformed schedule fails at construction, not
        # mid-run.
        from repro.faults.chaos import (
            CrashEpisode, LossBurstEpisode, PartitionEpisode, parse_episode,
        )

        episodes = []
        for ep in self.chaos:
            if isinstance(ep, str):
                ep = parse_episode(ep)
            elif not isinstance(
                ep, (CrashEpisode, PartitionEpisode, LossBurstEpisode)
            ):
                raise TypeError(
                    f"chaos entries must be fault episodes or "
                    f"'kind:key=value,...' specs, got {ep!r}"
                )
            episodes.append(ep)
        object.__setattr__(self, "chaos", tuple(episodes))
        if self.invariant_mode not in ("auto", "count", "strict", "off"):
            raise ValueError(
                f"invariant_mode must be auto, count, strict, or off, "
                f"got {self.invariant_mode!r}"
            )
        if not 0.0 < self.slo_success_threshold <= 1.0:
            raise ValueError(
                f"slo_success_threshold must be a rate in (0, 1], got "
                f"{self.slo_success_threshold!r} (0 would declare "
                "recovery while every query still fails)"
            )
        if self.slo_window < 1:
            raise ValueError(
                f"slo_window must be >= 1 consecutive steps, got "
                f"{self.slo_window!r}"
            )

    # -- derived quantities -------------------------------------------------------

    @property
    def region(self) -> DiscRegion:
        """The paper's circular deployment area for this n and density."""
        return disc_for_density(self.n, self.density)

    @property
    def r_tx(self) -> float:
        """Unit-disk transmission radius."""
        return radius_for_degree(self.target_degree, self.density)

    @property
    def resolved_hop_mode(self) -> str:
        """"auto" resolves to exact BFS below 500 nodes."""
        if self.hop_mode != "auto":
            return self.hop_mode
        return "bfs" if self.n <= 500 else "euclidean"

    @property
    def duration(self) -> float:
        """Metered simulated time in seconds."""
        return self.steps * self.dt

    @property
    def faults_enabled(self) -> bool:
        """True when the control plane is lossy (EXP-A10 regime)."""
        return self.loss_rate > 0.0

    @property
    def service_enabled(self) -> bool:
        """True when the open-loop service front-end runs (server mode)."""
        return self.arrival_rate > 0.0

    @property
    def has_chaos(self) -> bool:
        """True when any fault injection runs: a scheduled episode or
        the legacy Poisson crash field."""
        return bool(self.chaos) or self.failure_rate > 0.0

    @property
    def resolved_invariant_mode(self) -> str:
        """"auto" resolves to "count" when fault injection is on."""
        if self.invariant_mode != "auto":
            return self.invariant_mode
        return "count" if self.has_chaos else "off"

    def fault_schedule(self):
        """The effective :class:`~repro.faults.chaos.FaultSchedule`:
        scheduled episodes plus the legacy ``failure_rate`` crash
        process (expressed as a whole-run episode on the historical
        ``"failures"`` RNG stream, preserving EXP-A3 bit-identically).
        """
        from repro.faults.chaos import CrashEpisode, FaultSchedule

        episodes = tuple(self.chaos)
        if self.failure_rate > 0.0:
            episodes += (CrashEpisode(
                rate=self.failure_rate, repair_time=self.repair_time,
                stream="failures",
            ),)
        return FaultSchedule(episodes=episodes)

    def loss_model(self):
        """The :class:`~repro.faults.loss.LossModel` these fields describe."""
        from repro.faults import LossModel

        return LossModel(rate=self.loss_rate, level_coeff=self.loss_level_coeff)

    def retry_policy(self):
        """The :class:`~repro.faults.retry.RetryPolicy` these fields describe."""
        from repro.faults import RetryPolicy

        return RetryPolicy(
            max_attempts=self.retry_attempts,
            base_backoff=self.retry_backoff,
            backoff_factor=self.retry_backoff_factor,
            jitter=self.retry_jitter,
            timeout=self.retry_timeout,
        )

    def mean_step_displacement(self) -> float:
        """Expected node displacement per step, in units of R_tx."""
        mu = (
            float(self.speed)
            if np.isscalar(self.speed)
            else (self.speed[0] + self.speed[1]) / 2.0
        )
        return mu * self.dt / self.r_tx
