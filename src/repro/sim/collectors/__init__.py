"""Pluggable measurement plane for the simulator pipeline.

Every metric the simulator reports is produced by a *collector*: an
object implementing the :class:`~repro.sim.collectors.base.Collector`
protocol (``on_start`` / ``on_step`` / ``finalize``) that observes the
engine's immutable per-step :class:`~repro.sim.snapshot.StepSnapshot`.
The engine's job ends at advancing phases and building snapshots; what
gets *measured* is entirely collector-side, so new workloads add a
collector instead of reopening the engine::

    class MyCollector(Collector):
        def on_step(self, snap):
            ...  # read snap.positions / snap.hierarchy / snap.report

    res = Simulator(scenario, collectors=[MyCollector()]).run()
    res.extras["collector"]  # whatever finalize() returned

The default set (built by the simulator from the scenario) reproduces
the classic inline metrics bit-identically: :class:`LedgerCollector`,
:class:`LinkEventCollector`, :class:`QueryCollector` (when the scenario
samples queries), :class:`StateCollector`, :class:`TraceCollector`
(when tracing), :class:`LevelSeriesCollector`, and
:class:`HopSampleCollector`.  Collector state is pickled wholesale by
:meth:`~repro.sim.engine.Simulator.checkpoint`, so custom collectors
resume for free as long as their state is picklable.
"""

from repro.sim.collectors.base import Collector
from repro.sim.collectors.chaos import ChaosCollector, ChaosReport, EpisodeSLO
from repro.sim.collectors.ledger import LedgerCollector
from repro.sim.collectors.levels import LevelSeriesCollector
from repro.sim.collectors.links import LinkEventCollector
from repro.sim.collectors.queries import QueryCollector
from repro.sim.collectors.sampling import HopSampleCollector
from repro.sim.collectors.service import ServiceCollector
from repro.sim.collectors.states import StateCollector
from repro.sim.collectors.tracing import TraceCollector

__all__ = [
    "ChaosCollector",
    "ChaosReport",
    "Collector",
    "EpisodeSLO",
    "LedgerCollector",
    "LinkEventCollector",
    "LevelSeriesCollector",
    "ServiceCollector",
    "StateCollector",
    "HopSampleCollector",
    "TraceCollector",
    "QueryCollector",
]
