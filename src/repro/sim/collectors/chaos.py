"""Chaos observation: invariant series and recovery SLOs.

Registered by the simulator whenever fault injection is on (or the
scenario forces ``invariant_mode``), this collector runs the
:func:`repro.faults.invariants.check_invariants` sweep on every metered
snapshot and aggregates the result into a :class:`ChaosReport`:

* per-step series — invariant violations, orphaned nodes, down nodes,
  stale LM entries;
* stale-location windows — lengths of maximal step runs during which
  the handoff engine carried stale entries;
* per-episode SLOs — for every scheduled episode, the measured
  **time-to-reconverge**: seconds from the episode's end until the
  hierarchy holds zero invariant violations (and, when the run samples
  queries, the query success rate has recrossed
  ``slo_success_threshold``) for ``slo_window`` consecutive steps.

The collector is strictly read-only and draws no randomness, so adding
it never perturbs a run's metric series.  Its report lands in
``SimResult.extras["chaos"]`` and flows into the
:mod:`repro.obs` manifest/report path.  See docs/ROBUSTNESS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.sim.collectors.base import Collector

__all__ = ["ChaosCollector", "ChaosReport", "EpisodeSLO"]


@dataclass(frozen=True)
class EpisodeSLO:
    """Recovery measurement for one scheduled episode."""

    index: int
    """Position in the fault schedule."""
    kind: str
    """Episode kind: "crash", "partition", or "burst"."""
    start: float
    end: float
    """Episode window in simulated seconds (end may exceed the run)."""
    recovered_step: int | None
    """First metered step of the sustained-recovery window, or None
    when the run never reconverged (or the episode never ended)."""
    time_to_reconverge: float | None
    """Seconds from episode end to sustained recovery (0.0 when the
    network was already converged at the first post-episode step)."""
    peak_violations: int
    peak_orphans: int
    peak_down: int
    """Worst per-step counts observed from episode start to recovery
    (or to the end of the run)."""


@dataclass
class ChaosReport:
    """Everything the chaos collector measured in one run."""

    violations_series: list[int] = field(default_factory=list)
    orphan_series: list[int] = field(default_factory=list)
    down_series: list[int] = field(default_factory=list)
    stale_series: list[int] = field(default_factory=list)
    episodes: list[EpisodeSLO] = field(default_factory=list)
    stale_windows: list[int] = field(default_factory=list)
    """Lengths (in steps) of maximal windows with stale LM entries."""

    @property
    def total_violations(self) -> int:
        return int(sum(self.violations_series))

    @property
    def peak_violations(self) -> int:
        return int(max(self.violations_series, default=0))

    @property
    def peak_down(self) -> int:
        return int(max(self.down_series, default=0))

    @property
    def max_stale_window(self) -> int:
        return int(max(self.stale_windows, default=0))

    def max_time_to_reconverge(self) -> float | None:
        """Worst measured recovery time across episodes (None when no
        episode both ended and reconverged within the run)."""
        times = [
            e.time_to_reconverge for e in self.episodes
            if e.time_to_reconverge is not None
        ]
        return max(times) if times else None


class ChaosCollector(Collector):
    """Per-step invariant checking + per-episode recovery SLOs."""

    name = "chaos"
    phase = "diff"

    def __init__(self, schedule, mode: str = "count", ledger=None,
                 slo_success_threshold: float = 0.9, slo_window: int = 3):
        self._schedule = schedule
        self._strict = mode == "strict"
        self._ledger = ledger
        self._threshold = float(slo_success_threshold)
        self._window = int(slo_window)
        self.report = ChaosReport()
        self._dt = 1.0
        self._steps = 0

    def on_start(self, snap) -> None:
        self._dt = snap.scenario.dt
        self._steps = snap.scenario.steps

    def on_step(self, snap) -> None:
        from repro.faults.invariants import check_invariants

        down = snap.down
        alive = None if down is None else ~down
        inv = check_invariants(
            snap.hierarchy, snap.edges, assignment=snap.assignment,
            alive=alive, step=snap.step, strict=self._strict,
        )
        rep = self.report
        rep.violations_series.append(inv.violations)
        rep.orphan_series.append(inv.orphaned)
        rep.down_series.append(0 if down is None else int(down.sum()))
        stale = snap.report.stale_entries if snap.report is not None else 0
        rep.stale_series.append(int(stale))

    # -- SLO computation -----------------------------------------------------

    def _recovered(self, step: int) -> bool:
        """Is ``step`` converged?  Zero violations and (when queries are
        sampled) success at or above the threshold."""
        if self.report.violations_series[step] > 0:
            return False
        if self._ledger is not None:
            series = self._ledger.success_series
            if step < len(series) and series[step] < self._threshold:
                return False
        return True

    def _sustained_from(self, step: int) -> int | None:
        """First step >= ``step`` opening a run of ``slo_window``
        recovered steps (a shorter all-recovered tail at the very end of
        the run counts — the run just ended converged)."""
        total = len(self.report.violations_series)
        run = 0
        for s in range(step, total):
            run = run + 1 if self._recovered(s) else 0
            if run >= self._window or (run > 0 and s == total - 1):
                return s - run + 1
        return None

    def _episode_slo(self, index: int, ep) -> EpisodeSLO:
        kind = type(ep).__name__.replace("Episode", "").lower()
        kind = {"crash": "crash", "partition": "partition",
                "lossburst": "burst"}.get(kind, kind)
        total = len(self.report.violations_series)
        # Step i covers simulated time ((i)*dt, (i+1)*dt]; the first
        # post-episode step is the first whose clock reached ep.end.
        end_step = int(math.ceil(ep.end / self._dt)) - 1 \
            if math.isfinite(ep.end) else None
        recovered = None
        if end_step is not None and end_step < total:
            recovered = self._sustained_from(max(end_step, 0))
        ttr = None
        if recovered is not None:
            ttr = (recovered - max(end_step, 0)) * self._dt
        start_step = max(int(math.ceil(ep.start / self._dt)) - 1, 0)
        upto = total if recovered is None else min(recovered + 1, total)
        window = slice(min(start_step, total), upto)
        rep = self.report
        return EpisodeSLO(
            index=index, kind=kind, start=ep.start, end=ep.end,
            recovered_step=recovered, time_to_reconverge=ttr,
            peak_violations=int(max(rep.violations_series[window], default=0)),
            peak_orphans=int(max(rep.orphan_series[window], default=0)),
            peak_down=int(max(rep.down_series[window], default=0)),
        )

    def finalize(self, elapsed: float) -> dict:
        rep = self.report
        run = 0
        for stale in rep.stale_series:
            if stale > 0:
                run += 1
            elif run:
                rep.stale_windows.append(run)
                run = 0
        if run:
            rep.stale_windows.append(run)
        episodes = getattr(self._schedule, "episodes", self._schedule) or ()
        rep.episodes = [
            self._episode_slo(i, ep) for i, ep in enumerate(episodes)
        ]
        return {"chaos": rep}
