"""Handoff overhead accounting as a collector."""

from __future__ import annotations

from repro.core.accounting import OverheadLedger
from repro.sim.collectors.base import Collector

__all__ = ["LedgerCollector"]


class LedgerCollector(Collector):
    """Feeds each step's :class:`~repro.core.handoff.HandoffReport` into
    an :class:`~repro.core.accounting.OverheadLedger` (phi, gamma,
    registration, retransmission/staleness series)."""

    name = "ledger"
    phase = "handoff"

    def __init__(self, n_nodes: int):
        self.ledger = OverheadLedger(n_nodes=n_nodes)

    def on_step(self, snap) -> None:
        """Record the step's handoff report against the step duration."""
        self.ledger.record(snap.report, snap.scenario.dt)

    def finalize(self, elapsed: float) -> dict:
        """Contribute ``ledger`` to the result."""
        return {"ledger": self.ledger}
