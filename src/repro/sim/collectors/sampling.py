"""Hop-count and giant-component sampling as a collector.

This is the costliest observation (BFS from several sources), so it runs
on a cadence: every ``hop_sample_every``-th metered step (step 0 always
samples).  It owns the dedicated "sampling" RNG stream — sampling more
or less often never perturbs any other series.
"""

from __future__ import annotations

import numpy as np

from repro.graphs import CompactGraph
from repro.hierarchy.stats import level_hop_counts, mean_hop_count
from repro.sim.collectors.base import Collector
from repro.sim.kernels import giant_fraction

__all__ = ["HopSampleCollector"]


class HopSampleCollector(Collector):
    """Samples network/per-level mean hop counts (h, h_k) and the giant
    component fraction on the configured cadence."""

    name = "hops"
    phase = "sampling"

    def __init__(self, rng: np.random.Generator, every: int):
        self._rng = rng
        self._every = max(int(every), 1)
        self._h_network: list[float] = []
        self._h_levels: dict[int, list[float]] = {}
        self._giant_sum = 0.0
        self._giant_samples = 0

    def on_step(self, snap) -> None:
        """Sample h, h_k, and the giant fraction on cadence steps."""
        if snap.step % self._every != 0:
            return
        n = snap.scenario.n
        g = CompactGraph(np.arange(n), snap.edges)
        self._h_network.append(mean_hop_count(g, self._rng, n_sources=8))
        for k, val in level_hop_counts(
            snap.hierarchy, g, self._rng,
            clusters_per_level=6, sources_per_cluster=2,
        ).items():
            if val > 0:
                self._h_levels.setdefault(k, []).append(val)
        self._giant_sum += giant_fraction(g)
        self._giant_samples += 1

    def finalize(self, elapsed: float) -> dict:
        """Contribute ``h_network``, ``h_levels``, and ``giant_fraction``."""
        return {
            "h_network": self._h_network,
            "h_levels": self._h_levels,
            "giant_fraction": (
                self._giant_sum / self._giant_samples
                if self._giant_samples else 0.0
            ),
        }
