"""Level-0 link event tracking and mean degree as a collector."""

from __future__ import annotations

from repro.radio.linkevents import LinkTracker
from repro.sim.collectors.base import Collector

__all__ = ["LinkEventCollector"]


class LinkEventCollector(Collector):
    """Meters level-0 link events (Eq. 4's f_0) and the mean degree.

    Observes the baseline edge set too, so the first metered step diffs
    against the pre-run topology — exactly the inline behavior it
    replaces.
    """

    name = "links"
    phase = "diff"

    def __init__(self, n: int):
        self._tracker = LinkTracker(n=n)
        self._degree_sum = 0.0
        self._steps = 0

    def on_start(self, snap) -> None:
        """Record the baseline edge set (the first diff's reference)."""
        self._tracker.observe(snap.edges)

    def on_step(self, snap) -> None:
        """Diff this step's edges against the last and accumulate degree."""
        self._tracker.observe(snap.edges)
        self._degree_sum += 2.0 * len(snap.edges) / snap.scenario.n
        self._steps += 1

    def finalize(self, elapsed: float) -> dict:
        """Contribute ``f0`` and ``mean_degree`` to the result."""
        return {
            "f0": self._tracker.events_per_node_per_second(elapsed),
            "mean_degree": self._degree_sum / self._steps if self._steps else 0.0,
        }
