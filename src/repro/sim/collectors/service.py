"""Collector adapter for the open-loop service front-end.

Owns the dedicated ``"service"`` RNG stream (via the front-end's
workload generator) and contributes ``extras["service"]`` — the run's
:class:`~repro.service.report.ServiceReport`.  Registered by the engine
only when ``Scenario.service_enabled``; the front-end is a pure
observer, so with it registered (or not) every other metric series is
bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.sim.collectors.base import Collector

__all__ = ["ServiceCollector"]


class ServiceCollector(Collector):
    """Feeds each metered snapshot to a
    :class:`~repro.service.frontend.ServiceFrontend` and reports its
    SLOs.  Checkpoint-safe: the front-end drops its thread pool on
    pickling and rebuilds it lazily after restore."""

    name = "service"
    phase = "diff"

    def __init__(self, scenario, rng: np.random.Generator, delivery=None):
        from repro.service import ServiceFrontend

        self.frontend = ServiceFrontend(scenario, rng, delivery=delivery)

    def on_step(self, snap) -> None:
        """Run the step's open-loop workload against the snapshot."""
        self.frontend.process_step(snap)

    def finalize(self, elapsed: float) -> dict:
        """Contribute ``service`` (the :class:`ServiceReport`)."""
        return {"service": self.frontend.finalize()}
