"""ALCA election-state tracking as a collector."""

from __future__ import annotations

from repro.clustering.state import StateTracker
from repro.sim.collectors.base import Collector

__all__ = ["StateCollector"]


class StateCollector(Collector):
    """Tracks per-level ALCA state occupancies (the p_j estimates of
    Eqs. 15-22), observing the baseline and every metered step."""

    name = "states"
    phase = "diff"

    def __init__(self):
        self._trackers: dict[int, StateTracker] = {}

    def _observe(self, hierarchy) -> None:
        for lvl in hierarchy.levels:
            if lvl.election is None:
                continue
            self._trackers.setdefault(lvl.k, StateTracker()).observe(lvl.election)

    def on_start(self, snap) -> None:
        """Observe the baseline election states."""
        self._observe(snap.hierarchy)

    def on_step(self, snap) -> None:
        """Observe this step's election states."""
        self._observe(snap.hierarchy)

    def finalize(self, elapsed: float) -> dict:
        """Contribute ``state_stats`` (levels with samples only)."""
        return {
            "state_stats": {
                j: t.stats() for j, t in self._trackers.items() if t.samples > 0
            }
        }
