"""Per-level hierarchy series (sizes, link events, address changes)."""

from __future__ import annotations

from repro.sim.collectors.base import Collector
from repro.sim.kernels import (
    EMPTY_IDS,
    EMPTY_KEYS,
    count_drift,
    diff_keys,
    level_edge_keys,
)
from repro.sim.metrics import LevelSeries

__all__ = ["LevelSeriesCollector"]


class LevelSeriesCollector(Collector):
    """Accumulates the per-level series behind g'_k and staleness.

    Per step: diffs each level's edge-key set against the previous step
    (total link events plus the drift subset between persisting nodes),
    records level sizes/edge counts, and counts per-node address
    component changes against the previous hierarchy's ancestry.
    """

    name = "levels"
    phase = "diff"

    def __init__(self, n: int):
        self._n = n
        self.series = LevelSeries()
        self._prev_level_edges: dict = {}

    def on_start(self, snap) -> None:
        """Freeze the baseline per-level edge keys as the first reference."""
        self._prev_level_edges = level_edge_keys(snap.hierarchy, self._n)

    def on_step(self, snap) -> None:
        """Diff level edges, record shapes, and count address changes."""
        n = self._n
        hierarchy = snap.hierarchy
        cur_level_edges = level_edge_keys(hierarchy, n)
        prev_level_edges = self._prev_level_edges
        for k in set(cur_level_edges) | set(prev_level_edges):
            before, nodes_before = prev_level_edges.get(k, (EMPTY_KEYS, EMPTY_IDS))
            after, nodes_after = cur_level_edges.get(k, (EMPTY_KEYS, EMPTY_IDS))
            changed = diff_keys(before, after)
            drift = count_drift(changed, n, nodes_before, nodes_after)
            self.series.add_link_events(k, int(changed.size), drift)
        self._prev_level_edges = cur_level_edges

        for lvl in hierarchy.levels:
            self.series.record_level(lvl.k, lvl.n_nodes, lvl.n_edges)
        prev_h = snap.prev_hierarchy
        for k in range(1, min(prev_h.num_levels, hierarchy.num_levels) + 1):
            changed = int((prev_h.ancestry(k) != hierarchy.ancestry(k)).sum())
            self.series.add_address_changes(k, changed)

    def finalize(self, elapsed: float) -> dict:
        """Contribute ``level_series`` to the result."""
        return {"level_series": self.series}
