"""The collector protocol: the measurement plane's extension point.

A collector is an object with three hooks — ``on_start`` (baseline
snapshot, before any metered step), ``on_step`` (once per metered step,
in registration order), and ``finalize`` (after the last step, returning
the collector's contribution to the :class:`~repro.sim.metrics.SimResult`).
The engine never inspects collector internals; checkpointing pickles the
collector objects wholesale, so any picklable state resumes for free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.snapshot import StepSnapshot

__all__ = ["Collector"]


class Collector:
    """Base class / protocol for pipeline observers.

    Subclass and override any subset of the hooks.  Class attributes:

    ``name``
        Stable identifier; un-routable ``finalize`` output lands in
        ``SimResult.extras`` under this key.
    ``phase``
        The :data:`repro.obs.timers.PHASES` bucket this collector's
        dispatch time is charged to when the run is profiled
        (default ``"diff"``, the metering bucket).

    Contract: hooks must treat the snapshot as read-only, and any state
    a collector keeps across steps must be picklable for
    checkpoint/resume to cover it.
    """

    name: str = "collector"
    phase: str = "diff"

    def on_start(self, snap: "StepSnapshot") -> None:
        """Observe the unmetered baseline snapshot (``snap.step == -1``,
        ``snap.report is None``) before the first metered step."""

    def on_step(self, snap: "StepSnapshot") -> None:
        """Observe one metered step (called exactly once per step, in
        collector registration order)."""

    def finalize(self, elapsed: float) -> dict[str, Any] | Any:
        """Return this collector's outputs after the last step.

        ``elapsed`` is the metered simulated time in seconds.  A dict
        whose keys name :class:`~repro.sim.metrics.SimResult` fields is
        merged into the result; unknown keys (or a non-dict return) go
        to ``SimResult.extras``.
        """
        return {}
