"""Event-trace recording as a collector."""

from __future__ import annotations

from repro.sim.collectors.base import Collector
from repro.sim.trace import EventTrace

__all__ = ["TraceCollector"]


class TraceCollector(Collector):
    """Records handoff migrations/reorgs into an
    :class:`~repro.sim.trace.EventTrace` ring buffer."""

    name = "trace"
    phase = "diff"

    def __init__(self, trace: EventTrace):
        self.trace = trace

    def on_step(self, snap) -> None:
        """Record this step's pure migrations, reorgs, and handoff totals."""
        trace = self.trace
        report = snap.report
        t = snap.t
        for ev in report.diff.migrations:
            if ev.pure:
                trace.record(
                    t, "migration", node=ev.node, level=ev.level,
                    old=ev.old_cluster, new=ev.new_cluster,
                )
        for ev in report.diff.reorgs:
            trace.record(
                t, f"reorg:{ev.kind.value}", level=ev.level,
                subject=ev.subject, other=ev.other,
            )
        if report.total_handoff_packets:
            trace.record(
                t, "handoff", phi=report.phi_packets,
                gamma=report.gamma_packets,
            )

    def finalize(self, elapsed: float) -> dict:
        """Contribute ``trace`` to the result."""
        return {"trace": self.trace}
