"""Location-query sampling through the (possibly lossy) stack.

Owns the dedicated "queries" RNG stream.  Self-pairs (s == d) are
redrawn — a node "querying" its own location resolves trivially and
would inflate the measured hit rate for free — and counted in
``QueryLedger.self_pairs``.  Redrawing (rather than skipping) keeps the
per-step attempt count exactly ``queries_per_step``.

Resolution is batched (``repro.core.batch_query``): the step's whole
query set goes through one vectorized :class:`BatchResolver`.  Lossless
runs take the pure array path; lossy runs walk batch-precomputed probe
plans against the shared delivery engine *in query order*, so the
channel RNG consumes draws in exactly the sequence the scalar loop did
— the ledger stays bit-identical either way.
"""

from __future__ import annotations

import numpy as np

from repro.sim.collectors.base import Collector

__all__ = ["QueryCollector"]


class QueryCollector(Collector):
    """Samples random s-d location queries each step via the engine's
    effective assignment, metering direct hits, expanding-ring
    fallbacks, and outright failures."""

    name = "queries"
    phase = "diff"

    def __init__(self, rng: np.random.Generator, delivery=None):
        from repro.faults import QueryLedger

        self._rng = rng
        self._delivery = delivery
        self.ledger = QueryLedger()

    def _draw_pairs(self, sc) -> tuple[np.ndarray, np.ndarray]:
        """The step's (s, d) pairs, drawn exactly as the historical
        scalar loop did (including self-pair redraws) so the "queries"
        stream stays bit-identical."""
        ledger = self.ledger
        src = np.empty(sc.queries_per_step, dtype=np.int64)
        dst = np.empty(sc.queries_per_step, dtype=np.int64)
        for i in range(sc.queries_per_step):
            pair = self._rng.integers(0, sc.n, size=2)
            s, d = int(pair[0]), int(pair[1])
            while s == d:
                ledger.self_pairs += 1
                pair = self._rng.integers(0, sc.n, size=2)
                s, d = int(pair[0]), int(pair[1])
            src[i] = s
            dst[i] = d
        return src, dst

    def on_step(self, snap) -> None:
        """Resolve this step's query batch against the effective
        assignment; failed probes fall back to an expanding-ring flood
        (successful but metered as degradation), unreachable targets
        fail outright."""
        from repro.core.batch_query import BatchResolver
        from repro.faults import expanding_ring_cost

        sc = snap.scenario
        ledger = self.ledger
        if sc.queries_per_step <= 0:
            ledger.close_step()
            return
        src, dst = self._draw_pairs(sc)
        resolver = BatchResolver(
            snap.hierarchy, snap.assignment, snap.hop_fn, hash_fn=sc.hash_fn
        )
        if self._delivery is None:
            out = resolver.resolve(src, dst)
            packets = out.packets
            hit_levels = out.hit_level
        else:
            plans = resolver.plans(src, dst)
            packets = np.empty(src.size, dtype=np.int64)
            hit_levels = np.empty(src.size, dtype=np.int64)
            for i in range(src.size):
                packets[i], hit_levels[i], _, _ = plans.walk(i, self._delivery)
        misses = np.flatnonzero(hit_levels < 0)
        target_hops = np.zeros(src.size, dtype=np.int64)
        if misses.size:
            target_hops[misses] = resolver.hops(src[misses], dst[misses])
        for i in range(src.size):
            pkts = int(packets[i])
            if hit_levels[i] >= 0:
                ledger.record_direct(pkts)
                continue
            th = int(target_hops[i])
            if th > 0:
                flood = expanding_ring_cost(th, sc.n, sc.density, sc.r_tx)
                ledger.record_fallback(pkts, flood)
            else:
                ledger.record_failure(pkts)
        ledger.close_step()

    def finalize(self, elapsed: float) -> dict:
        """Contribute ``queries`` (the :class:`QueryLedger`)."""
        return {"queries": self.ledger}
