"""Location-query sampling through the (possibly lossy) stack.

Owns the dedicated "queries" RNG stream.  Self-pairs (s == d) are
redrawn — a node "querying" its own location resolves trivially and
would inflate the measured hit rate for free — and counted in
``QueryLedger.self_pairs``.  Redrawing (rather than skipping) keeps the
per-step attempt count exactly ``queries_per_step``.
"""

from __future__ import annotations

import numpy as np

from repro.sim.collectors.base import Collector

__all__ = ["QueryCollector"]


class QueryCollector(Collector):
    """Samples random s-d location queries each step via the engine's
    effective assignment, metering direct hits, expanding-ring
    fallbacks, and outright failures."""

    name = "queries"
    phase = "diff"

    def __init__(self, rng: np.random.Generator, delivery=None):
        from repro.faults import QueryLedger

        self._rng = rng
        self._delivery = delivery
        self.ledger = QueryLedger()

    def on_step(self, snap) -> None:
        """Resolve this step's query batch against the effective
        assignment; failed probes fall back to an expanding-ring flood
        (successful but metered as degradation), unreachable targets
        fail outright."""
        from repro.core.query import resolve
        from repro.faults import expanding_ring_cost

        sc = snap.scenario
        ledger = self.ledger
        assignment = snap.assignment
        hierarchy = snap.hierarchy
        hop_fn = snap.hop_fn
        for _ in range(sc.queries_per_step):
            pair = self._rng.integers(0, sc.n, size=2)
            s, d = int(pair[0]), int(pair[1])
            while s == d:
                ledger.self_pairs += 1
                pair = self._rng.integers(0, sc.n, size=2)
                s, d = int(pair[0]), int(pair[1])
            qr = resolve(
                hierarchy, assignment, s, d, hop_fn,
                hash_fn=sc.hash_fn, delivery=self._delivery,
            )
            if qr.hit_level >= 0:
                ledger.record_direct(qr.packets)
                continue
            target_hops = hop_fn(s, d)
            if target_hops > 0:
                flood = expanding_ring_cost(
                    target_hops, sc.n, sc.density, sc.r_tx
                )
                ledger.record_fallback(qr.packets, flood)
            else:
                ledger.record_failure(qr.packets)
        ledger.close_step()

    def finalize(self, elapsed: float) -> dict:
        """Contribute ``queries`` (the :class:`QueryLedger`)."""
        return {"queries": self.ledger}
