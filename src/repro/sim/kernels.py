"""Vectorized per-step simulator kernels.

The metered loop spends its time diffing consecutive hierarchy
snapshots; done naively (Python sets of ``(u, v)`` tuples, pure-Python
BFS) the object churn dominates the NumPy/cKDTree work.  This module
keeps every per-step comparison in int64 array land:

* level edges are encoded as scalar keys ``u * n + v`` (the same
  canonical encoding :mod:`repro.radio.linkevents` uses for f_0), so a
  level diff is two ``np.isin`` calls on unique arrays;
* drift counting (changed links whose endpoints persist at the level)
  decodes the changed keys and masks them against the persistent node
  set — no Python-level membership tests;
* the largest-component fraction runs through
  ``scipy.sparse.csgraph.connected_components`` on the
  :class:`~repro.graphs.CompactGraph`'s cached CSR adjacency.

Each kernel is equivalence-tested against the original pure-Python
implementation in ``tests/sim/test_kernels.py``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs import CompactGraph
from repro.hierarchy.levels import ClusteredHierarchy
from repro.radio.unit_disk import encode_edges

__all__ = [
    "EMPTY_KEYS",
    "EMPTY_IDS",
    "level_edge_keys",
    "diff_keys",
    "count_drift",
    "giant_fraction",
]

EMPTY_KEYS = np.empty(0, dtype=np.int64)
EMPTY_IDS = np.empty(0, dtype=np.int64)


def level_edge_keys(
    h: ClusteredHierarchy, n: int
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Per level k >= 1: (encoded edge-key array, node-ID array).

    Keys use the base-``n`` encoding of :func:`repro.radio.unit_disk.
    encode_edges` (level node IDs are physical IDs, so they fit).  Both
    arrays are sorted and unique — the form the diff kernels assume.
    """
    return {
        lvl.k: (np.sort(encode_edges(lvl.edges, n)), lvl.node_ids)
        for lvl in h.levels
        if lvl.k >= 1
    }


def diff_keys(before: np.ndarray, after: np.ndarray) -> np.ndarray:
    """Symmetric difference of two unique edge-key arrays.

    Equivalent to ``set(before) ^ set(after)`` on decoded tuples: the
    link state change events of one step at one level.
    """
    if before.size == 0:
        return after
    if after.size == 0:
        return before
    return np.concatenate(
        [
            before[~np.isin(before, after, assume_unique=True)],
            after[~np.isin(after, before, assume_unique=True)],
        ]
    )


def count_drift(
    changed_keys: np.ndarray,
    n: int,
    nodes_before: np.ndarray,
    nodes_after: np.ndarray,
) -> int:
    """Count changed links whose *both* endpoints persist at the level.

    These are the Section 5.3.1 'cluster migration' link events; the
    remainder of a level diff is election/rejection churn.
    """
    if changed_keys.size == 0:
        return 0
    persistent = np.intersect1d(nodes_before, nodes_after, assume_unique=True)
    if persistent.size == 0:
        return 0
    u = changed_keys // n
    v = changed_keys % n
    return int((np.isin(u, persistent) & np.isin(v, persistent)).sum())


def giant_fraction(g: CompactGraph) -> float:
    """Largest connected-component fraction via scipy's C-level union."""
    if g.n == 0:
        return 0.0
    from scipy.sparse.csgraph import connected_components

    _, labels = connected_components(g.sparse(), directed=False)
    return float(np.bincount(labels).max()) / g.n
