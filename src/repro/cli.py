"""Command-line interface.

::

    python -m repro list
    python -m repro experiment EXP-T4 [--full] [--seeds 0,1]
    python -m repro simulate --n 300 --steps 60 --speed 1.5 [--trace]
    python -m repro simulate --n 300 --checkpoint run.ckpt --checkpoint-every 20
    python -m repro simulate --n 300 --chaos partition:start=30,duration=20 \\
        --chaos-report chaos.json
    python -m repro resume run.ckpt
    python -m repro serve --n 500 --steps 25 --arrival-rate 500 \\
        --admission-rate 400 [--slo-report slo.json]
    python -m repro sweep --ns 200,400,800 --seeds 0,1,2 --workers 4
    python -m repro profile --ns 200,400 --seeds 0,1 [--manifest runs.jsonl]
    python -m repro hierarchy --n 120 [--seed 7]
    python -m repro info

Everything the CLI prints comes from the same public API the examples
use; the CLI adds no behavior of its own.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Sucec & Marsic (IPPS 2002): "
                    "hierarchical MANET LM handoff overhead.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("info", help="show version and component inventory")

    p_exp = sub.add_parser("experiment", help="run one experiment")
    p_exp.add_argument("exp_id", help="experiment id, e.g. EXP-T4")
    p_exp.add_argument("--full", action="store_true",
                       help="wide grid (slow) instead of the quick grid")
    p_exp.add_argument("--seeds", default="0,1",
                       help="comma-separated seeds (default 0,1)")

    p_sim = sub.add_parser("simulate", help="run one scenario and print metrics")
    p_sim.add_argument("--preset", default=None,
                       help="start from a named preset (see repro.sim.PRESETS)")
    p_sim.add_argument("--n", type=int, default=200)
    p_sim.add_argument("--steps", type=int, default=50)
    p_sim.add_argument("--warmup", type=int, default=10)
    p_sim.add_argument("--speed", type=float, default=1.0)
    p_sim.add_argument("--dt", type=float, default=1.0)
    p_sim.add_argument("--density", type=float, default=0.02)
    p_sim.add_argument("--degree", type=float, default=9.0)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--levels", type=int, default=None,
                       help="hierarchy depth cap (default: log-scaled)")
    p_sim.add_argument("--mobility", default="random_waypoint",
                       choices=["random_waypoint", "random_direction",
                                "group", "stationary", "gauss_markov"])
    p_sim.add_argument("--election", default="memoryless",
                       choices=["memoryless", "sticky", "persistent"])
    p_sim.add_argument("--hops", default="auto",
                       choices=["auto", "bfs", "euclidean"])
    p_sim.add_argument("--incremental-hierarchy",
                       action=argparse.BooleanOptionalAction, default=False,
                       help="event-driven control plane: patch the ALCA "
                            "hierarchy and descent chains from link deltas "
                            "instead of rebuilding per step (bit-identical "
                            "results; requires memoryless LCA elections)")
    p_sim.add_argument("--verlet-skin", type=float, default=0.5,
                       help="Verlet candidate-radius inflation for the "
                            "incremental pipeline (rebuild after "
                            "skin*R_tx/2 drift; bit-identical output)")
    p_sim.add_argument("--loss-rate", type=float, default=0.0,
                       help="per-hop control-packet loss probability "
                            "(default 0 = lossless)")
    p_sim.add_argument("--retry-attempts", type=int, default=4,
                       help="max delivery attempts per control message "
                            "when --loss-rate > 0 (default 4)")
    p_sim.add_argument("--chaos", action="append", default=None,
                       metavar="SPEC",
                       help="schedule a fault episode (repeatable); SPEC is "
                            "kind:key=value,... e.g. "
                            "'crash:start=10,duration=5,rate=0.02' or "
                            "'partition:start=30,duration=20,angle=1.57' or "
                            "'burst:start=5,duration=10,rate=0.3' "
                            "(see repro.faults.parse_episode)")
    p_sim.add_argument("--invariant-mode", default="auto",
                       choices=["auto", "count", "strict", "off"],
                       help="hierarchy invariant checking: auto enables "
                            "counting whenever faults are injected; strict "
                            "raises on the first violation (default auto)")
    p_sim.add_argument("--chaos-report", default=None, metavar="PATH",
                       help="write the chaos report (invariant series, "
                            "episode SLOs) to this path as JSON")
    p_sim.add_argument("--trace", action="store_true",
                       help="print the tail of the event trace")
    p_sim.add_argument("--profile", action="store_true",
                       help="meter pipeline phases; print the breakdown")
    p_sim.add_argument("--manifest", default=None, metavar="PATH",
                       help="write a run manifest (JSON) to this path")
    p_sim.add_argument("--trace-jsonl", default=None, metavar="PATH",
                       help="with --trace: also write the full trace as JSONL")
    p_sim.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="write periodic checkpoints to this path "
                            "(resume later with 'repro resume PATH')")
    p_sim.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="checkpoint cadence in steps (default 25; "
                            "requires --checkpoint)")

    p_res = sub.add_parser(
        "resume", help="resume an interrupted simulate run from a checkpoint")
    p_res.add_argument("checkpoint", metavar="CHECKPOINT",
                       help="checkpoint file written by simulate --checkpoint")
    p_res.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="keep checkpointing to the same file every N steps "
                            "while finishing the run")
    p_res.add_argument("--keep-checkpoint", action="store_true",
                       help="leave the checkpoint file in place after the run "
                            "completes (default: delete it)")

    p_srv = sub.add_parser(
        "serve",
        help="open-loop service run: drive lookups/updates at an arrival "
             "rate, report latency/throughput SLOs")
    p_srv.add_argument("--preset", default=None,
                       help="start from a named preset (see repro.sim.PRESETS)")
    p_srv.add_argument("--n", type=int, default=200)
    p_srv.add_argument("--steps", type=int, default=25)
    p_srv.add_argument("--warmup", type=int, default=5)
    p_srv.add_argument("--speed", type=float, default=1.0)
    p_srv.add_argument("--dt", type=float, default=1.0)
    p_srv.add_argument("--density", type=float, default=0.02)
    p_srv.add_argument("--degree", type=float, default=9.0)
    p_srv.add_argument("--seed", type=int, default=0)
    p_srv.add_argument("--levels", type=int, default=None,
                       help="hierarchy depth cap (default: log-scaled)")
    p_srv.add_argument("--hops", default="euclidean",
                       choices=["auto", "bfs", "euclidean"])
    p_srv.add_argument("--incremental-hierarchy",
                       action=argparse.BooleanOptionalAction, default=False,
                       help="event-driven control plane: patch the ALCA "
                            "hierarchy and descent chains from link deltas "
                            "instead of rebuilding per step (bit-identical "
                            "results)")
    p_srv.add_argument("--verlet-skin", type=float, default=0.5,
                       help="Verlet candidate-radius inflation for the "
                            "incremental pipeline (bit-identical output)")
    p_srv.add_argument("--arrival-rate", type=float, default=50.0,
                       help="mean service arrivals per simulated second "
                            "(default 50; must be > 0)")
    p_srv.add_argument("--arrival-process", default="poisson",
                       choices=["poisson", "diurnal", "hotspot"],
                       help="arrival process: homogeneous Poisson, diurnal "
                            "sinusoid rate, or hotspot-skewed Zipf targets")
    p_srv.add_argument("--admission-rate", type=float, default=0.0,
                       help="token-bucket admission rate in requests per "
                            "simulated second (default 0 = admit all)")
    p_srv.add_argument("--service-workers", type=int, default=4,
                       help="dispatcher worker count (default 4)")
    p_srv.add_argument("--queue-capacity", type=int, default=512,
                       help="waiting-request backlog bound (default 512)")
    p_srv.add_argument("--update-fraction", type=float, default=0.2,
                       help="fraction of requests that are re-registrations "
                            "rather than lookups (default 0.2)")
    p_srv.add_argument("--scheme", default="chlm", choices=["chlm", "gls"],
                       help="resolution scheme the service fronts (default chlm)")
    p_srv.add_argument("--loss-rate", type=float, default=0.0,
                       help="per-hop control-packet loss probability "
                            "(default 0 = lossless)")
    p_srv.add_argument("--retry-attempts", type=int, default=4,
                       help="max delivery attempts per control message "
                            "when --loss-rate > 0 (default 4)")
    p_srv.add_argument("--slo-report", default=None, metavar="PATH",
                       help="write the service SLO summary (latency "
                            "percentiles, throughput, shed/drop counts) to "
                            "this path as JSON")
    p_srv.add_argument("--manifest", default=None, metavar="PATH",
                       help="write a run manifest (JSON) to this path")

    p_rep = sub.add_parser("report", help="run experiments, emit a markdown report")
    p_rep.add_argument("--out", default=None, help="write the report to this file")
    p_rep.add_argument("--experiments", default=None,
                       help="comma-separated experiment ids (default: all)")
    p_rep.add_argument("--full", action="store_true", help="wide grids")
    p_rep.add_argument("--seeds", default="0,1")

    p_sw = sub.add_parser(
        "sweep",
        help="run a sizes x seeds scenario grid (parallel, result-cached)")
    p_sw.add_argument("--ns", default="100,200,400",
                      help="comma-separated node counts (default 100,200,400)")
    p_sw.add_argument("--seeds", default="0,1",
                      help="comma-separated seeds (default 0,1)")
    p_sw.add_argument("--steps", type=int, default=40)
    p_sw.add_argument("--warmup", type=int, default=10)
    p_sw.add_argument("--speed", type=float, default=1.0)
    p_sw.add_argument("--dt", type=float, default=1.0)
    p_sw.add_argument("--density", type=float, default=0.02)
    p_sw.add_argument("--degree", type=float, default=9.0)
    p_sw.add_argument("--hops", default="euclidean",
                      choices=["auto", "bfs", "euclidean"])
    p_sw.add_argument("--incremental-hierarchy",
                      action=argparse.BooleanOptionalAction, default=False,
                      help="event-driven control plane for every task "
                           "(bit-identical results; cached under a "
                           "distinct key)")
    p_sw.add_argument("--verlet-skin", type=float, default=0.5,
                      help="Verlet candidate-radius inflation for the "
                           "incremental pipeline (bit-identical output)")
    p_sw.add_argument("--loss-rate", type=float, default=0.0,
                      help="per-hop control-packet loss probability "
                           "(default 0 = lossless)")
    p_sw.add_argument("--retry-attempts", type=int, default=4,
                      help="max delivery attempts per control message "
                           "when --loss-rate > 0 (default 4)")
    p_sw.add_argument("--task-timeout", type=float, default=None,
                      help="per-task wall-clock budget in seconds "
                           "(parallel mode; default: no timeout)")
    p_sw.add_argument("--task-retries", type=int, default=1,
                      help="re-runs granted to crashed/timed-out tasks "
                           "(default 1)")
    p_sw.add_argument("--workers", type=int, default=None,
                      help="process count (default: REPRO_SWEEP_WORKERS or serial)")
    p_sw.add_argument("--cache-dir", default=None,
                      help="result cache directory "
                           "(default: ~/.cache/repro/sweeps)")
    p_sw.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                      help="write per-task checkpoints here so crashed or "
                           "timed-out tasks resume instead of restarting")
    p_sw.add_argument("--checkpoint-every", type=int, default=None,
                      metavar="N",
                      help="per-task checkpoint cadence in steps "
                           "(default 25; requires --checkpoint-dir)")
    p_sw.add_argument("--no-cache", action="store_true",
                      help="always re-simulate, never touch the cache")
    p_sw.add_argument("--json", default=None, metavar="PATH",
                      help="also write the aggregated points as JSON")
    p_sw.add_argument("--quiet", action="store_true",
                      help="suppress per-task progress lines")

    p_pr = sub.add_parser(
        "profile",
        help="profiled sweep: per-phase breakdown, cache hits, throughput")
    p_pr.add_argument("--ns", default="100,200",
                      help="comma-separated node counts (default 100,200)")
    p_pr.add_argument("--seeds", default="0,1",
                      help="comma-separated seeds (default 0,1)")
    p_pr.add_argument("--steps", type=int, default=30)
    p_pr.add_argument("--warmup", type=int, default=10)
    p_pr.add_argument("--speed", type=float, default=1.0)
    p_pr.add_argument("--dt", type=float, default=1.0)
    p_pr.add_argument("--density", type=float, default=0.02)
    p_pr.add_argument("--degree", type=float, default=9.0)
    p_pr.add_argument("--hops", default="euclidean",
                      choices=["auto", "bfs", "euclidean"])
    p_pr.add_argument("--workers", type=int, default=None,
                      help="process count (default: REPRO_SWEEP_WORKERS or serial)")
    p_pr.add_argument("--cache-dir", default=None,
                      help="result cache directory "
                           "(default: ~/.cache/repro/sweeps)")
    p_pr.add_argument("--no-cache", action="store_true",
                      help="always re-simulate, never touch the cache")
    p_pr.add_argument("--manifest", default=None, metavar="PATH",
                      help="write one run manifest per task as JSONL")
    p_pr.add_argument("--quiet", action="store_true",
                      help="suppress per-task progress lines")

    p_h = sub.add_parser("hierarchy", help="build and render a hierarchy")
    p_h.add_argument("--n", type=int, default=100)
    p_h.add_argument("--seed", type=int, default=7)
    p_h.add_argument("--density", type=float, default=0.02)
    p_h.add_argument("--degree", type=float, default=9.0)
    p_h.add_argument("--tree", action="store_true",
                     help="print the full cluster tree, not just the summary")
    return parser


def _cmd_list() -> int:
    from repro.experiments import ALL_EXPERIMENTS

    titles = {
        "EXP-F1": "Fig. 1 — example clustered hierarchy",
        "EXP-F2": "Fig. 2 — GLS grid hierarchy",
        "EXP-F3": "Fig. 3 — ALCA states + q1 (the paper's future work)",
        "EXP-T1": "Eq. 4 — f0 = Theta(1)",
        "EXP-T2": "Eq. 3 — hop-count scaling",
        "EXP-T3": "Eqs. 7-9 — f_k = Theta(1/h_k)",
        "EXP-T4": "Sec. 4 — phi = O(log^2 n)  [headline]",
        "EXP-T5": "Sec. 5 — gamma = O(log^2 n) + event taxonomy",
        "EXP-T6": "Eqs. 13-14 — cluster-link structure",
        "EXP-T7": "Sec. 3.2 — hash load equitability",
        "EXP-T8": "GLS vs CHLM overhead",
        "EXP-T9": "Sec. 2.1 — routing state",
        "EXP-T10": "Sec. 6 — overhead budget",
        "EXP-A1": "ablation — memoryless vs sticky elections",
        "EXP-A2": "ablation — radio vs contraction level links",
        "EXP-A3": "extension — handoff under node failure",
        "EXP-A4": "extension — address-component lifetimes / staleness",
        "EXP-A5": "extension — persistent cluster IDs recover gamma",
        "EXP-A6": "extension — query correctness under lag",
        "EXP-A7": "extension — routing state vs stretch tradeoff",
        "EXP-A8": "extension — degree sensitivity (magic number)",
        "EXP-A9": "extension — end-to-end sessions on the full stack",
        "EXP-A10": "extension — lossy control plane (retries, staleness)",
        "EXP-A11": "extension — chaos episodes, invariants, recovery SLOs",
        "EXP-A12": "extension — open-loop service load, latency SLOs",
    }
    for eid in ALL_EXPERIMENTS:
        print(f"{eid:8s} {titles.get(eid, '')}")
    return 0


def _cmd_info() -> int:
    import repro

    print(f"repro {repro.__version__}")
    print(__doc__.strip().splitlines()[0])
    for pkg in repro.__all__:
        print(f"  repro.{pkg}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    fn = ALL_EXPERIMENTS.get(args.exp_id.upper())
    if fn is None:
        print(f"unknown experiment {args.exp_id!r}; try 'repro list'",
              file=sys.stderr)
        return 2
    seeds = tuple(int(s) for s in args.seeds.split(",") if s != "")
    kwargs = {"quick": not args.full}
    if seeds:
        kwargs["seeds"] = seeds
    try:
        result = fn(**kwargs)
    except TypeError:
        # Figure experiments take no seeds argument.
        result = fn(quick=not args.full)
    print(result.to_text())
    return 0


def _cmd_simulate(args) -> int:
    from repro.analysis import levels_for
    from repro.sim import Scenario, Simulator

    levels = args.levels if args.levels is not None else levels_for(args.n)
    kwargs = dict(
        n=args.n, steps=args.steps, warmup=args.warmup, speed=args.speed,
        dt=args.dt, density=args.density, target_degree=args.degree,
        seed=args.seed, max_levels=levels, mobility=args.mobility,
        election_mode=args.election, hop_mode=args.hops,
        loss_rate=args.loss_rate, retry_attempts=args.retry_attempts,
        chaos=tuple(args.chaos or ()), invariant_mode=args.invariant_mode,
        incremental_hierarchy=args.incremental_hierarchy,
        verlet_skin=args.verlet_skin,
    )
    if args.preset:
        from repro.sim import make_scenario

        # Preset supplies the regime; sizing/run-control flags override.
        for key in ("speed", "dt", "density", "mobility"):
            kwargs.pop(key, None)
        sc = make_scenario(args.preset, **kwargs)
    else:
        sc = Scenario(**kwargs)
    if args.checkpoint_every is not None and not args.checkpoint:
        print("--checkpoint-every requires --checkpoint", file=sys.stderr)
        return 2
    sim = Simulator(sc, trace=args.trace, profile=args.profile)
    res = sim.run(checkpoint_every=args.checkpoint_every,
                  checkpoint_path=args.checkpoint)
    _print_run(res, show_trace=args.trace, trace_jsonl=args.trace_jsonl,
               show_profile=args.profile)
    if args.checkpoint:
        # The run finished, so the crash-protection checkpoint is stale;
        # an interrupted run leaves it behind for 'repro resume'.
        import os

        try:
            os.remove(args.checkpoint)
        except OSError:
            pass
    if args.manifest:
        from repro.obs import RunManifest

        path = RunManifest.from_result(res).write(args.manifest)
        print(f"manifest written to {path}")
    if args.chaos_report:
        chaos = res.extras.get("chaos")
        if chaos is None:
            print("--chaos-report: run collected no chaos data "
                  "(is invariant checking off?)", file=sys.stderr)
            return 2
        import dataclasses
        import json

        with open(args.chaos_report, "w") as fh:
            json.dump(dataclasses.asdict(chaos), fh, indent=2)
            fh.write("\n")
        print(f"chaos report written to {args.chaos_report}")
    return 0


def _print_run(res, show_trace=False, trace_jsonl=None, show_profile=False):
    """Print the standard per-run metric block (simulate and resume)."""
    sc = res.scenario
    levels = "auto" if sc.max_levels is None else sc.max_levels
    print(f"n={sc.n}  L<={levels}  mu={sc.speed} m/s  "
          f"{sc.duration:.0f} s metered  (seed {sc.seed})")
    print(f"  f_0          = {res.f0:.3f} link events/node/s")
    print(f"  phi          = {res.phi:.4f} pkts/node/s")
    print(f"  gamma        = {res.gamma:.4f} pkts/node/s")
    print(f"  handoff      = {res.handoff_rate:.4f} pkts/node/s "
          f"(log^2 n = {np.log(sc.n) ** 2:.1f})")
    print(f"  registration = {res.ledger.registration_rate:.4f} pkts/node/s")
    print(f"  phi_k   = {res.ledger.phi_k()}")
    print(f"  gamma_k = {res.ledger.gamma_k()}")
    print(f"  f_k     = {res.ledger.f_k()}")
    if sc.faults_enabled:
        print(f"  retransmission = {res.ledger.retransmission_rate:.4f} "
              f"pkts/node/s")
        print(f"  abandonment    = {res.ledger.abandonment_rate:.5f} "
              f"entries/node/s")
        print(f"  mean recovery  = {res.ledger.mean_recovery_time:.2f} s "
              f"({res.ledger.recovered_entries} recovered, "
              f"{res.ledger.abandoned_entries} abandoned)")
    chaos = res.extras.get("chaos")
    if chaos is not None:
        ttr = chaos.max_time_to_reconverge()
        print(f"  invariants   = {chaos.total_violations} violations "
              f"(peak {chaos.peak_violations}/step)")
        print(f"  chaos        = peak {chaos.peak_down} nodes down, "
              f"max stale window {chaos.max_stale_window} steps, "
              f"reconverge "
              f"{'n/a' if ttr is None else f'{ttr:.1f} s'}")
        for ep in chaos.episodes:
            t = ep.time_to_reconverge
            print(f"    episode {ep.index} ({ep.kind}) "
                  f"[{ep.start:g}, {ep.end:g}): "
                  f"peak {ep.peak_violations} violations, "
                  f"{ep.peak_down} down, recovery "
                  f"{'not reached' if t is None else f'{t:.1f} s'}")
    if show_trace and res.trace is not None:
        print("\nevent trace (last 20):")
        for line in res.trace.to_lines(limit=20):
            print(" ", line)
        print(f"  summary: {res.trace.summary()}")
        if trace_jsonl:
            count = res.trace.to_jsonl(trace_jsonl)
            print(f"  trace written to {trace_jsonl} ({count} records)")
    if show_profile and res.timings is not None:
        print(f"\nphase breakdown (wall {res.timings.wall_seconds:.2f} s):")
        for line in res.timings.to_lines():
            print(" ", line)


def _cmd_serve(args) -> int:
    from repro.analysis import levels_for
    from repro.sim import Scenario, run_scenario

    if args.arrival_rate <= 0:
        print("serve needs --arrival-rate > 0", file=sys.stderr)
        return 2
    levels = args.levels if args.levels is not None else levels_for(args.n)
    kwargs = dict(
        n=args.n, steps=args.steps, warmup=args.warmup, speed=args.speed,
        dt=args.dt, density=args.density, target_degree=args.degree,
        seed=args.seed, max_levels=levels, hop_mode=args.hops,
        loss_rate=args.loss_rate, retry_attempts=args.retry_attempts,
        arrival_rate=args.arrival_rate,
        arrival_process=args.arrival_process,
        admission_rate=args.admission_rate,
        service_workers=args.service_workers,
        service_queue_capacity=args.queue_capacity,
        service_update_fraction=args.update_fraction,
        service_scheme=args.scheme,
        incremental_hierarchy=args.incremental_hierarchy,
        verlet_skin=args.verlet_skin,
    )
    if args.preset:
        from repro.sim import make_scenario

        for key in ("speed", "dt", "density"):
            kwargs.pop(key, None)
        sc = make_scenario(args.preset, **kwargs)
    else:
        sc = Scenario(**kwargs)
    res = run_scenario(sc)
    rep = res.extras["service"]
    admission = ("admit-all" if sc.admission_rate <= 0
                 else f"{sc.admission_rate:g}/s")
    print(f"n={sc.n}  L<={sc.max_levels}  {sc.duration:.0f} s metered  "
          f"(seed {sc.seed})")
    print(f"  workload   = {sc.arrival_rate:g}/s {sc.arrival_process} "
          f"({sc.service_scheme}), admission {admission}, "
          f"{sc.service_workers} workers")
    print(f"  offered    = {rep.offered}  served = {rep.served}  "
          f"shed = {rep.shed}  dropped = {rep.dropped}")
    print(f"  latency    = p50 {rep.p50:.4f} / p95 {rep.p95:.4f} / "
          f"p99 {rep.p99:.4f} s  (mean wait {rep.mean_wait:.4f} s)")
    print(f"  throughput = {rep.throughput:.1f} req/s  "
          f"peak queue = {rep.peak_queue_depth}")
    print(f"  lookups    = {rep.lookups} "
          f"(direct {rep.direct_hits}, fallback {rep.fallback_hits}, "
          f"failed {rep.failed})  updates = {rep.updates}")
    print(f"  success    = {rep.success_rate:.3f}  "
          f"dispatch wall = {rep.wall_seconds:.3f} s")
    if args.slo_report:
        import json

        with open(args.slo_report, "w") as fh:
            json.dump(rep.to_metrics(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"SLO report written to {args.slo_report}")
    if args.manifest:
        from repro.obs import RunManifest

        path = RunManifest.from_result(res).write(args.manifest)
        print(f"manifest written to {path}")
    return 0


def _cmd_resume(args) -> int:
    import os

    from repro.sim import Simulator

    if not os.path.exists(args.checkpoint):
        print(f"no such checkpoint: {args.checkpoint}", file=sys.stderr)
        return 2
    try:
        sim = Simulator.restore(args.checkpoint)
    except (ValueError, OSError) as exc:
        print(f"cannot resume from {args.checkpoint}: {exc}", file=sys.stderr)
        return 2
    sc = sim.sc
    print(f"resuming at step {sim.next_step}/{sc.steps} "
          f"from {args.checkpoint}")
    if args.checkpoint_every is not None:
        res = sim.run(checkpoint_every=args.checkpoint_every,
                      checkpoint_path=args.checkpoint)
    else:
        res = sim.run()
    _print_run(res, show_trace=res.trace is not None,
               show_profile=res.timings is not None)
    if not args.keep_checkpoint:
        try:
            os.remove(args.checkpoint)
        except OSError:
            pass
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis import compare_shapes, levels_for
    from repro.sim import Scenario, cached_sweep, default_cache_dir, print_progress

    ns = tuple(int(x) for x in args.ns.split(",") if x.strip())
    seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
    if not ns or not seeds:
        print("need at least one size and one seed", file=sys.stderr)
        return 2
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    base = Scenario(
        n=ns[0], steps=args.steps, warmup=args.warmup, speed=args.speed,
        dt=args.dt, density=args.density, target_degree=args.degree,
        hop_mode=args.hops,
        loss_rate=args.loss_rate, retry_attempts=args.retry_attempts,
        incremental_hierarchy=args.incremental_hierarchy,
        verlet_skin=args.verlet_skin,
    )
    lossy = base.faults_enabled
    metrics = {
        "phi": lambda r: r.phi,
        "gamma": lambda r: r.gamma,
        "total": lambda r: r.handoff_rate,
    }
    if lossy:
        metrics["retx"] = lambda r: r.ledger.retransmission_rate
        metrics["abandon"] = lambda r: r.ledger.abandonment_rate
    from dataclasses import replace

    if args.checkpoint_every is not None and not args.checkpoint_dir:
        print("--checkpoint-every requires --checkpoint-dir", file=sys.stderr)
        return 2
    points = cached_sweep(
        ns, base, metrics, seeds=seeds,
        scenario_for=lambda sc, n: replace(sc, max_levels=levels_for(n)),
        workers=args.workers, cache_dir=cache_dir,
        progress=None if args.quiet else print_progress,
        task_timeout=args.task_timeout, task_retries=args.task_retries,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
    )
    header = (f"{'n':>6} {'L':>3} {'phi':>8} {'gamma':>8} {'total':>8} "
              f"{'total/log^2n':>13}")
    if lossy:
        header += f" {'retx':>8} {'abandon':>8}"
    print(header)
    for p in points:
        line = (f"{p.n:>6} {levels_for(p.n):>3} {p['phi']:>8.4f} "
                f"{p['gamma']:>8.4f} {p['total']:>8.4f} "
                f"{p['total'] / np.log(p.n) ** 2:>13.5f}")
        if lossy:
            line += f" {p['retx']:>8.4f} {p['abandon']:>8.5f}"
        print(line)
    if len(points) >= 3:
        xs = [p.n for p in points]
        ys = [p["total"] for p in points]
        fits = compare_shapes(xs, ys, shapes=("log2", "sqrt", "log", "linear"))
        print(f"AIC best shape: {fits[0].shape}; "
              f"ranking: {[f.shape for f in fits]}")
    if args.json:
        from repro.persist import save_sweep

        save_sweep(points, args.json, meta={
            "ns": list(ns), "seeds": list(seeds), "steps": args.steps,
            "speed": args.speed, "dt": args.dt, "density": args.density,
            "target_degree": args.degree, "hop_mode": args.hops,
            "incremental_hierarchy": args.incremental_hierarchy,
        })
        print(f"points written to {args.json}")
    return 0


def _cmd_profile(args) -> int:
    from dataclasses import replace

    from repro.analysis import levels_for
    from repro.obs import RunManifest, SweepReport, write_jsonl
    from repro.sim import (
        Scenario,
        default_cache_dir,
        expand_grid,
        print_progress,
        run_sweep_detailed,
    )

    ns = tuple(int(x) for x in args.ns.split(",") if x.strip())
    seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
    if not ns or not seeds:
        print("need at least one size and one seed", file=sys.stderr)
        return 2
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    base = Scenario(
        n=ns[0], steps=args.steps, warmup=args.warmup, speed=args.speed,
        dt=args.dt, density=args.density, target_degree=args.degree,
        hop_mode=args.hops,
    )
    grid = expand_grid(
        base, ns, seeds,
        scenario_for=lambda sc, n: replace(sc, max_levels=levels_for(n)),
    )
    report = SweepReport()

    def _progress(p):
        report.record(p)
        if not args.quiet:
            print_progress(p)

    run = run_sweep_detailed(
        grid, workers=args.workers, cache_dir=cache_dir,
        progress=_progress, profile=True,
    )
    report.finish(run)
    print(report.render())
    if args.manifest:
        manifests = [
            RunManifest.from_result(r).to_dict()
            for r in run.results if r is not None
        ]
        write_jsonl(args.manifest, manifests)
        print(f"{len(manifests)} manifests written to {args.manifest}")
    return 0 if run.ok else 1


def _cmd_hierarchy(args) -> int:
    from repro.geometry import disc_for_density
    from repro.hierarchy import build_hierarchy, render_hierarchy, render_summary
    from repro.radio import radius_for_degree, unit_disk_edges

    region = disc_for_density(args.n, args.density)
    rng = np.random.default_rng(args.seed)
    pts = region.sample(args.n, rng)
    r_tx = radius_for_degree(args.degree, args.density)
    edges = unit_disk_edges(pts, r_tx)
    h = build_hierarchy(np.arange(args.n), edges, level_mode="radio",
                        positions=pts, r0=r_tx)
    print(render_summary(h))
    if args.tree:
        print()
        print(render_hierarchy(h))
    return 0


def _cmd_report(args) -> int:
    from repro.analysis import generate_report

    exp_ids = None
    if args.experiments:
        exp_ids = [e.strip().upper() for e in args.experiments.split(",") if e.strip()]
    seeds = tuple(int(s) for s in args.seeds.split(",") if s != "")
    text = generate_report(exp_ids=exp_ids, quick=not args.full,
                           seeds=seeds, out_path=args.out)
    if args.out:
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "info":
        return _cmd_info()
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "hierarchy":
        return _cmd_hierarchy(args)
    if args.command == "report":
        return _cmd_report(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
