"""EXP-F1 bench: regenerate the Fig. 1 hierarchy table."""

from repro.experiments import e_f1_hierarchy


def test_bench_f1_hierarchy(run_experiment):
    run_experiment(e_f1_hierarchy.run, quick=True)
