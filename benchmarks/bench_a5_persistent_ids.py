"""EXP-A5 bench: cluster-identity persistence recovers the gamma bound."""

from repro.experiments import e_a5_persistent_ids


def test_bench_a5_persistent_ids(run_experiment):
    run_experiment(e_a5_persistent_ids.run, quick=True, seeds=(0,))
