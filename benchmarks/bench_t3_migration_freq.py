"""EXP-T3 bench: f_k = Theta(1/h_k) (Eqs. 7-9)."""

from repro.experiments import e_t3_migration_freq


def test_bench_t3_migration_freq(run_experiment):
    run_experiment(e_t3_migration_freq.run, quick=True, seeds=(0,))
