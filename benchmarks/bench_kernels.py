"""Microbenchmarks for the simulator's hot kernels.

These are conventional pytest-benchmark measurements (many rounds) of
the per-step operations whose cost bounds the sweep sizes: unit-disk
neighbor search, LCA election, hierarchy construction, CHLM assignment,
and a full simulator step.
"""

import numpy as np
import pytest

from repro.clustering import elect
from repro.core import full_assignment
from repro.geometry import disc_for_density
from repro.graphs import CompactGraph, bfs_distances
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges

N = 1000
DENSITY = 0.02
DEGREE = 9.0


@pytest.fixture(scope="module")
def deployment():
    region = disc_for_density(N, DENSITY)
    rng = np.random.default_rng(0)
    pts = region.sample(N, rng)
    r_tx = radius_for_degree(DEGREE, DENSITY)
    edges = unit_disk_edges(pts, r_tx)
    return pts, r_tx, edges


def test_bench_unit_disk_edges(benchmark, deployment):
    pts, r_tx, _ = deployment
    result = benchmark(unit_disk_edges, pts, r_tx)
    assert len(result) > N  # supercritical degree


def test_bench_lca_election(benchmark, deployment):
    _, _, edges = deployment
    ids = np.arange(N)
    result = benchmark(elect, ids, edges)
    assert result.n_clusters < N


def test_bench_build_hierarchy_radio(benchmark, deployment):
    pts, r_tx, edges = deployment
    h = benchmark(
        build_hierarchy,
        np.arange(N),
        edges,
        max_levels=4,
        level_mode="radio",
        positions=pts,
        r0=r_tx,
    )
    assert h.num_levels >= 2


def test_bench_full_assignment(benchmark, deployment):
    pts, r_tx, edges = deployment
    h = build_hierarchy(
        np.arange(N), edges, max_levels=4, level_mode="radio",
        positions=pts, r0=r_tx,
    )
    a = benchmark(full_assignment, h)
    # Levels 2..L plus the virtual global level: L entries per subject.
    assert len(a.servers) == N * h.num_levels


def test_bench_bfs_distances(benchmark, deployment):
    _, _, edges = deployment
    g = CompactGraph(np.arange(N), edges)
    d = benchmark(bfs_distances, g, 0)
    assert (d >= -1).all()


def test_bench_forwarding_fabric(benchmark, deployment):
    from repro.routing import ForwardingFabric

    pts, r_tx, edges = deployment
    h = build_hierarchy(
        np.arange(N), edges, max_levels=4, level_mode="radio",
        positions=pts, r0=r_tx,
    )
    g = CompactGraph(np.arange(N), edges)

    def full_build():
        # Tables are lazy: table_sizes() forces every flood record, so
        # this measures the complete construction cost.
        fab = ForwardingFabric(h, g)
        fab.table_sizes()
        return fab

    fab = benchmark.pedantic(full_build, rounds=5, iterations=1, warmup_rounds=1)
    assert fab.table_sizes().mean() > 0


def test_bench_fabric_incremental(benchmark):
    """Steady-state fabric maintenance: one FabricCache.update() under a
    small mobility drift (n=400, matching the simulator-step bench scale).
    Acceptance: within ~2x of a simulator step."""
    from repro.radio.linkevents import LinkTracker
    from repro.routing import FabricCache

    n = 400
    region = disc_for_density(n, DENSITY)
    r_tx = radius_for_degree(DEGREE, DENSITY)
    rng = np.random.default_rng(0)
    pts = region.sample(n, rng)

    def make_state():
        tracker = LinkTracker(n)
        cache = FabricCache()
        p = pts
        snaps = []
        for _ in range(2):
            edges = unit_disk_edges(p, r_tx)
            g = CompactGraph(np.arange(n), edges)
            h = build_hierarchy(np.arange(n), edges, max_levels=3,
                                level_mode="radio", positions=p, r0=r_tx)
            snaps.append((h, g, edges))
            p = p + rng.normal(scale=0.15, size=p.shape)
        h0, g0, e0 = snaps[0]
        cache.update(h0, g0, tracker.observe(e0))
        cache.fabric.table_sizes()
        return (cache, tracker, snaps[1]), {}

    def one_update(cache, tracker, snap):
        h, g, edges = snap
        fab = cache.update(h, g, tracker.observe(edges))
        fab.table_sizes()
        return cache.stats

    stats = benchmark.pedantic(one_update, setup=make_state, rounds=5)
    assert stats.rows_reused > 0  # the update actually reused flood state


def _hierarchy_bench_state(n=400, drift=0.15):
    """Two consecutive snapshots of a drifting deployment (the
    simulator's steady state): positions + canonical edge arrays."""
    region = disc_for_density(n, DENSITY)
    r_tx = radius_for_degree(DEGREE, DENSITY)
    rng = np.random.default_rng(0)
    pts0 = region.sample(n, rng)
    pts1 = pts0 + rng.normal(scale=drift, size=pts0.shape)
    e0 = unit_disk_edges(pts0, r_tx)
    e1 = unit_disk_edges(pts1, r_tx)
    return r_tx, (pts0, e0), (pts1, e1)


def test_bench_hierarchy_full_rebuild(benchmark):
    """Baseline for the event plane: from-scratch build_hierarchy on the
    steady-state snapshot (what every non-incremental step pays)."""
    n = 400
    r_tx, _, (pts1, e1) = _hierarchy_bench_state(n)
    h = benchmark(build_hierarchy, np.arange(n), e1, max_levels=3,
                  level_mode="radio", positions=pts1, r0=r_tx)
    assert h.num_levels >= 2


def test_bench_hierarchy_incremental(benchmark):
    """Steady-state hierarchy maintenance: one DeltaPlane.advance()
    under a small mobility drift — re-votes only the affected-node
    closure.  The budget gate (HIERARCHY_BUDGET < 1) pins this cheaper
    than the full re-election it replaces."""
    from repro.hierarchy import DeltaPlane

    n = 400
    r_tx, (pts0, e0), (pts1, e1) = _hierarchy_bench_state(n)

    def make_state():
        plane = DeltaPlane(n, max_levels=3, level_mode="radio", r0=r_tx)
        plane.advance(e0, pts0)
        return (plane,), {}

    def one_advance(plane):
        h = plane.advance(e1, pts1)
        plane.delta()  # the step's full cost includes the delta
        return h

    h = benchmark.pedantic(one_advance, setup=make_state, rounds=5)
    assert h.num_levels >= 2


def test_bench_simulator_step(benchmark):
    from repro.sim import Scenario, Simulator

    sc = Scenario(n=400, steps=1, warmup=0, speed=1.0, hop_mode="euclidean",
                  max_levels=3, seed=0)

    def one_run():
        return Simulator(sc, hop_sample_every=10_000).run()

    res = benchmark.pedantic(one_run, rounds=3, iterations=1, warmup_rounds=1)
    assert res.elapsed > 0


def test_bench_chaos_step(benchmark):
    """Same step with the full chaos stack live — an active crash
    episode, a partition cut, and per-step invariant checking.  The
    budget gate holds this within CHAOS_BUDGET x of the plain step."""
    from repro.sim import Scenario, Simulator

    sc = Scenario(n=400, steps=1, warmup=0, speed=1.0, hop_mode="euclidean",
                  max_levels=3, seed=0,
                  chaos=("crash:rate=0.02,repair=10",
                         "partition:start=0,duration=100,angle=0.7"))

    def one_run():
        return Simulator(sc, hop_sample_every=10_000).run()

    res = benchmark.pedantic(one_run, rounds=3, iterations=1, warmup_rounds=1)
    assert res.extras["chaos"] is not None


def test_bench_service_step(benchmark):
    """Same step with the open-loop service front-end live — workload
    generation, admission, thread-pool resolution, and queueing for
    ~100 requests.  The budget gate holds this within SERVICE_BUDGET x
    of the plain step."""
    from repro.sim import Scenario, Simulator

    sc = Scenario(n=400, steps=1, warmup=0, speed=1.0, hop_mode="euclidean",
                  max_levels=3, seed=0,
                  arrival_rate=100.0, admission_rate=80.0)

    def one_run():
        return Simulator(sc, hop_sample_every=10_000).run()

    res = benchmark.pedantic(one_run, rounds=3, iterations=1, warmup_rounds=1)
    assert res.extras["service"].offered > 0


def test_bench_simulator_step_profiled(benchmark):
    """Same step with phase timers on — tracks the instrumentation
    overhead (acceptance: within 5% of the plain step)."""
    from repro.sim import Scenario, Simulator

    sc = Scenario(n=400, steps=1, warmup=0, speed=1.0, hop_mode="euclidean",
                  max_levels=3, seed=0)

    def one_run():
        return Simulator(sc, hop_sample_every=10_000, profile=True).run()

    res = benchmark.pedantic(one_run, rounds=3, iterations=1, warmup_rounds=1)
    assert res.timings is not None and res.timings.steps == 1


@pytest.fixture(scope="module")
def snapshot_pair(deployment):
    """Two consecutive unit-disk snapshots (one mobility step apart),
    as the sorted encoded-key arrays the diff kernel consumes."""
    pts, r_tx, edges = deployment
    rng = np.random.default_rng(1)
    pts2 = pts + rng.normal(scale=r_tx * 0.1, size=pts.shape)
    edges2 = unit_disk_edges(pts2, r_tx)
    from repro.radio.unit_disk import encode_edges

    k1 = np.sort(encode_edges(edges, N))
    k2 = np.sort(encode_edges(edges2, N))
    return k1, k2


def test_bench_edge_diff_kernel(benchmark, snapshot_pair):
    from repro.sim.kernels import count_drift, diff_keys

    k1, k2 = snapshot_pair
    ids = np.arange(N)

    def diff_and_drift():
        changed = diff_keys(k1, k2)
        return count_drift(changed, N, ids, ids)

    drift = benchmark(diff_and_drift)
    assert drift > 0  # mobility produced link events


def test_bench_giant_fraction(benchmark, deployment):
    from repro.sim.kernels import giant_fraction

    _, _, edges = deployment
    g = CompactGraph(np.arange(N), edges)
    frac = benchmark(giant_fraction, g)
    assert frac > 0.9  # supercritical deployment


QUERIES_BATCH = 1000
QUERIES_SCALAR = 100


@pytest.fixture(scope="module")
def query_state(deployment):
    """Hierarchy + CHLM assignment + hop oracle + a query workload on
    the module deployment — shared by the scalar/batch resolver pair."""
    from repro.analysis import levels_for
    from repro.sim.hops import EuclideanHops

    pts, r_tx, edges = deployment
    h = build_hierarchy(
        np.arange(N), edges, max_levels=levels_for(N), level_mode="radio",
        positions=pts, r0=r_tx,
    )
    a = full_assignment(h)
    hop = EuclideanHops(pts, r_tx)
    rng = np.random.default_rng(7)
    src = rng.integers(0, N, size=QUERIES_BATCH)
    dst = rng.integers(0, N, size=QUERIES_BATCH)
    return h, a, hop, src, dst


def test_bench_scalar_query(benchmark, query_state):
    """Per-query baseline: QUERIES_SCALAR lookups through the scalar
    resolver (the bit-exact oracle the batch engine is checked against)."""
    from repro.core import resolve

    h, a, hop, src, dst = query_state
    s, d = src[:QUERIES_SCALAR].tolist(), dst[:QUERIES_SCALAR].tolist()

    def scalar_queries():
        return [resolve(h, a, x, y, hop) for x, y in zip(s, d)]

    out = benchmark(scalar_queries)
    assert len(out) == QUERIES_SCALAR


def test_bench_batch_query(benchmark, query_state):
    """QUERIES_BATCH lookups through the vectorized resolver.  The
    budget gate (BATCH_QUERY_BUDGET) pins the per-query cost at <= 1/20
    of the scalar path."""
    from repro.core import BatchResolver

    h, a, hop, src, dst = query_state
    resolver = BatchResolver(h, a, hop)
    resolver.resolve(src[:8], dst[:8])  # build the per-level tables once

    res = benchmark(resolver.resolve, src, dst)
    assert len(res) == QUERIES_BATCH and res.hits.all()


@pytest.fixture(scope="module")
def transport_payload():
    """A result-shaped payload (~48 MB of arrays plus a nested skeleton)
    matching what a 1e5-node sweep task ships back to the parent."""
    rng = np.random.default_rng(3)
    return {
        "positions": rng.standard_normal((2_000_000, 2)),
        "series": np.arange(2_000_000, dtype=np.int64),
        "meta": {"n": N, "levels": [0, 1, 2], "note": "x" * 256},
    }


def test_bench_result_transport_pickle(benchmark, transport_payload):
    """Baseline result transport: full pickle round-trip (what the
    executor pipe costs, minus the chunked pipe writes themselves)."""
    import pickle

    def roundtrip():
        return pickle.loads(
            pickle.dumps(transport_payload, protocol=pickle.HIGHEST_PROTOCOL)
        )

    out = benchmark.pedantic(roundtrip, rounds=5, iterations=1, warmup_rounds=1)
    assert out["series"][-1] == transport_payload["series"][-1]


def test_bench_result_transport_shm(benchmark, transport_payload):
    """Shared-memory result transport: pack_result/unpack_result
    round-trip through a /dev/shm segment.  The budget gate
    (SHM_BUDGET) keeps this in the same cost class as in-process
    pickling — the transport's actual win (skipping the executor
    pipe's chunked copies) is measured end-to-end by EXP-S1."""
    from repro.sim.shm import pack_result, shm_available, sweep_prefix, unpack_result

    if not shm_available():
        pytest.skip("POSIX shared memory unavailable")
    prefix = sweep_prefix()

    def roundtrip():
        return unpack_result(pack_result(transport_payload, prefix))

    out = benchmark.pedantic(roundtrip, rounds=5, iterations=1, warmup_rounds=1)
    assert out["series"][-1] == transport_payload["series"][-1]


def test_bench_parallel_sweep_small(benchmark):
    """A 2-worker sweep of 4 small scenarios — spawn + fan-out overhead
    included, the wide-grid building block."""
    from repro.sim import Scenario, expand_grid, run_sweep

    base = Scenario(n=120, steps=5, warmup=1, speed=1.0,
                    hop_mode="euclidean", max_levels=2)
    grid = expand_grid(base, [120], seeds=(0, 1, 2, 3))

    def one_sweep():
        return run_sweep(grid, hop_sample_every=1000, workers=2)

    results = benchmark.pedantic(one_sweep, rounds=1, iterations=1)
    assert len(results) == 4 and all(r.f0 > 0 for r in results)
