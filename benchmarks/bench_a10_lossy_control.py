"""EXP-A10 bench: LM overhead over a lossy control plane (extension)."""

from repro.experiments import e_a10_lossy_control


def test_bench_a10_lossy_control(run_experiment):
    run_experiment(e_a10_lossy_control.run, quick=True, seeds=(0,))
