"""EXP-A2 bench: radio-model vs contraction cluster-graph ablation."""

from repro.experiments import e_a2_level_mode


def test_bench_a2_level_mode(run_experiment):
    run_experiment(e_a2_level_mode.run, quick=True, seeds=(0,))
