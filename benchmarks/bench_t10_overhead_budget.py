"""EXP-T10 bench: handoff vs registration vs query budget (Section 6)."""

from repro.experiments import e_t10_overhead_budget


def test_bench_t10_overhead_budget(run_experiment):
    run_experiment(e_t10_overhead_budget.run, quick=True, seeds=(0,))
