"""EXP-A4 bench: address-component lifetimes / LM staleness extension."""

from repro.experiments import e_a4_staleness


def test_bench_a4_staleness(run_experiment):
    run_experiment(e_a4_staleness.run, quick=True, seeds=(0,))
