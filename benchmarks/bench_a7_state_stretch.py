"""EXP-A7 bench: routing state vs path stretch tradeoff."""

from repro.experiments import e_a7_state_stretch


def test_bench_a7_state_stretch(run_experiment):
    run_experiment(e_a7_state_stretch.run, quick=True, seeds=(0,))
