"""EXP-T5 bench: gamma = O(log^2 |V|) + event taxonomy (Section 5)."""

from repro.experiments import e_t5_reorg_handoff


def test_bench_t5_reorg_handoff(run_experiment):
    run_experiment(e_t5_reorg_handoff.run, quick=True, seeds=(0,))
