"""Benchmark harness configuration.

Each experiment bench runs its experiment once under pytest-benchmark
(rounds=1 — these are end-to-end simulations, not microkernels) and
prints the regenerated table, so ``pytest benchmarks/ --benchmark-only``
reproduces every figure/claim of the paper in one command.
"""

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment's ``run`` callable once, print its table."""

    def _run(fn, **kwargs):
        result = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
        )
        print()
        print(result.to_text())
        assert result.rows, "experiment produced no rows"
        return result

    return _run
