"""EXP-T9 bench: hierarchical map vs flat routing table sizes."""

from repro.experiments import e_t9_table_size


def test_bench_t9_table_size(run_experiment):
    run_experiment(e_t9_table_size.run, quick=True, seeds=(0, 1))
