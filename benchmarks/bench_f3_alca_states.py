"""EXP-F3 bench: Fig. 3 ALCA states + Eq. (22) q_1 quantification."""

from repro.experiments import e_f3_alca_states


def test_bench_f3_alca_states(run_experiment):
    run_experiment(e_f3_alca_states.run, quick=True, seeds=(0,))
