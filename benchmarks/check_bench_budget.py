"""Assert the forwarding-fabric kernels stay inside their perf budget.

Reads a pytest-benchmark JSON file (``BENCH_kernels.json`` by default)
and enforces two ratios:

* full fabric construction (``test_bench_forwarding_fabric``) must stay
  within ``FABRIC_BUDGET``x of full CHLM assignment
  (``test_bench_full_assignment``) — before the batched CSR kernels the
  ratio was ~130x; the budget pins the two-orders-of-magnitude win;
* one incremental fabric update (``test_bench_fabric_incremental``)
  must stay within ``INCREMENTAL_BUDGET``x of a simulator step
  (``test_bench_simulator_step``), the tentpole's steady-state target;
* a fully chaotic step (``test_bench_chaos_step``: active crash
  episode + partition cut + per-step invariant checking) must stay
  within ``CHAOS_BUDGET``x of the plain step — fault injection and
  invariant checking must never dominate the simulation itself;
* a server-mode step (``test_bench_service_step``: ~100 open-loop
  requests generated, admitted, resolved on the thread pool, and
  queued) must stay within ``SERVICE_BUDGET``x of the plain step —
  the front-end is an observer and must stay in the same cost class
  as the simulation it observes;
* one steady-state hierarchy patch (``test_bench_hierarchy_incremental``,
  n=400) must stay *under* ``HIERARCHY_BUDGET``x (< 1) of the full
  re-election it replaces (``test_bench_hierarchy_full_rebuild``) —
  the event-driven plane only earns its complexity by being cheaper
  than the rebuild.  Measured ~0.7x at introduction;
* the vectorized query resolver (``test_bench_batch_query``, 1000
  lookups) must stay under ``BATCH_QUERY_BUDGET``x (<= 0.05, i.e. a
  >= 20x speedup) of the scalar oracle *per query*
  (``test_bench_scalar_query`` runs 100 lookups; the check normalizes
  by the per-benchmark query counts).  Measured ~130x at introduction;
* the shared-memory result transport
  (``test_bench_result_transport_shm``) must stay within
  ``SHM_BUDGET``x of an in-process pickle round-trip on the same
  ~48 MB payload (``test_bench_result_transport_pickle``).  The
  segment path inherently stages two extra copies (worker write-in,
  parent read-out), so ~2x in-process is expected — the budget pins
  that it never grows further; its end-to-end win (skipping the
  executor pipe's chunked transfer) is EXP-S1's job to demonstrate.

Exit status is non-zero on violation, so CI fails the build.

Usage: ``python benchmarks/check_bench_budget.py [BENCH_kernels.json]``
"""

from __future__ import annotations

import json
import sys

FABRIC_BUDGET = 25.0
INCREMENTAL_BUDGET = 2.0
CHAOS_BUDGET = 2.0
SERVICE_BUDGET = 4.0
HIERARCHY_BUDGET = 0.85
BATCH_QUERY_BUDGET = 0.05
SHM_BUDGET = 2.5

# test_bench_batch_query resolves 1000 lookups per round while
# test_bench_scalar_query resolves 100, so the raw wall-clock ratio is
# scaled by 100/1000 to compare per-query costs.
_BATCH_QUERY_SCALE = 100 / 1000


#: Benchmarks that legitimately skip on some hosts (no /dev/shm); their
#: check is skipped rather than treated as a missing result.
OPTIONAL = {"test_bench_result_transport_shm"}


def mean_of(benchmarks: list[dict], name: str) -> float | None:
    for b in benchmarks:
        if b["name"] == name:
            return float(b["stats"]["mean"])
    if name in OPTIONAL:
        return None
    raise SystemExit(f"benchmark {name!r} missing from results")


def main(path: str) -> int:
    with open(path) as f:
        benchmarks = json.load(f)["benchmarks"]
    checks = [
        ("test_bench_forwarding_fabric", "test_bench_full_assignment",
         FABRIC_BUDGET),
        ("test_bench_fabric_incremental", "test_bench_simulator_step",
         INCREMENTAL_BUDGET),
        ("test_bench_chaos_step", "test_bench_simulator_step",
         CHAOS_BUDGET),
        ("test_bench_service_step", "test_bench_simulator_step",
         SERVICE_BUDGET),
        ("test_bench_hierarchy_incremental", "test_bench_hierarchy_full_rebuild",
         HIERARCHY_BUDGET),
        ("test_bench_batch_query", "test_bench_scalar_query",
         BATCH_QUERY_BUDGET, _BATCH_QUERY_SCALE),
        ("test_bench_result_transport_shm", "test_bench_result_transport_pickle",
         SHM_BUDGET),
    ]
    failed = False
    for name, baseline, budget, *rest in checks:
        scale = rest[0] if rest else 1.0
        t, ref = mean_of(benchmarks, name), mean_of(benchmarks, baseline)
        if t is None or ref is None:
            print(f"SKIP: {name} (benchmark skipped on this host)")
            continue
        ratio = t / ref * scale
        status = "OK" if ratio <= budget else "FAIL"
        if ratio > budget:
            failed = True
        unit = " per query" if scale != 1.0 else ""
        print(f"{status}: {name} {t * 1e3:.1f} ms = {ratio:.3g}x{unit} "
              f"{baseline} (budget {budget:g}x)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernels.json"))
