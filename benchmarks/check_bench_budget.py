"""Assert the forwarding-fabric kernels stay inside their perf budget.

Reads a pytest-benchmark JSON file (``BENCH_kernels.json`` by default)
and enforces two ratios:

* full fabric construction (``test_bench_forwarding_fabric``) must stay
  within ``FABRIC_BUDGET``x of full CHLM assignment
  (``test_bench_full_assignment``) — before the batched CSR kernels the
  ratio was ~130x; the budget pins the two-orders-of-magnitude win;
* one incremental fabric update (``test_bench_fabric_incremental``)
  must stay within ``INCREMENTAL_BUDGET``x of a simulator step
  (``test_bench_simulator_step``), the tentpole's steady-state target;
* a fully chaotic step (``test_bench_chaos_step``: active crash
  episode + partition cut + per-step invariant checking) must stay
  within ``CHAOS_BUDGET``x of the plain step — fault injection and
  invariant checking must never dominate the simulation itself;
* a server-mode step (``test_bench_service_step``: ~100 open-loop
  requests generated, admitted, resolved on the thread pool, and
  queued) must stay within ``SERVICE_BUDGET``x of the plain step —
  the front-end is an observer and must stay in the same cost class
  as the simulation it observes;
* one steady-state hierarchy patch (``test_bench_hierarchy_incremental``,
  n=400) must stay *under* ``HIERARCHY_BUDGET``x (< 1) of the full
  re-election it replaces (``test_bench_hierarchy_full_rebuild``) —
  the event-driven plane only earns its complexity by being cheaper
  than the rebuild.  Measured ~0.7x at introduction.

Exit status is non-zero on violation, so CI fails the build.

Usage: ``python benchmarks/check_bench_budget.py [BENCH_kernels.json]``
"""

from __future__ import annotations

import json
import sys

FABRIC_BUDGET = 25.0
INCREMENTAL_BUDGET = 2.0
CHAOS_BUDGET = 2.0
SERVICE_BUDGET = 4.0
HIERARCHY_BUDGET = 0.85


def mean_of(benchmarks: list[dict], name: str) -> float:
    for b in benchmarks:
        if b["name"] == name:
            return float(b["stats"]["mean"])
    raise SystemExit(f"benchmark {name!r} missing from results")


def main(path: str) -> int:
    with open(path) as f:
        benchmarks = json.load(f)["benchmarks"]
    checks = [
        ("test_bench_forwarding_fabric", "test_bench_full_assignment",
         FABRIC_BUDGET),
        ("test_bench_fabric_incremental", "test_bench_simulator_step",
         INCREMENTAL_BUDGET),
        ("test_bench_chaos_step", "test_bench_simulator_step",
         CHAOS_BUDGET),
        ("test_bench_service_step", "test_bench_simulator_step",
         SERVICE_BUDGET),
        ("test_bench_hierarchy_incremental", "test_bench_hierarchy_full_rebuild",
         HIERARCHY_BUDGET),
    ]
    failed = False
    for name, baseline, budget in checks:
        t, ref = mean_of(benchmarks, name), mean_of(benchmarks, baseline)
        ratio = t / ref
        status = "OK" if ratio <= budget else "FAIL"
        if ratio > budget:
            failed = True
        print(f"{status}: {name} {t * 1e3:.1f} ms = {ratio:.2f}x {baseline} "
              f"(budget {budget:g}x)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernels.json"))
