"""EXP-T2 bench: h = Theta(sqrt n), h_k = Theta(sqrt c_k) (Eq. 3)."""

from repro.experiments import e_t2_hopcount


def test_bench_t2_hopcount(run_experiment):
    run_experiment(e_t2_hopcount.run, quick=True, seeds=(0,))
