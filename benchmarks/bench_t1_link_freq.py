"""EXP-T1 bench: f_0 = Theta(1) (Eq. 4)."""

from repro.experiments import e_t1_link_freq


def test_bench_t1_link_freq(run_experiment):
    run_experiment(e_t1_link_freq.run, quick=True, seeds=(0,))
