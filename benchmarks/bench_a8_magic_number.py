"""EXP-A8 bench: degree sensitivity ("six is a magic number")."""

from repro.experiments import e_a8_magic_number


def test_bench_a8_magic_number(run_experiment):
    run_experiment(e_a8_magic_number.run, quick=True, seeds=(0,))
