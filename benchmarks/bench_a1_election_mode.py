"""EXP-A1 bench: memoryless vs sticky (LCC) election ablation."""

from repro.experiments import e_a1_election_mode


def test_bench_a1_election_mode(run_experiment):
    run_experiment(e_a1_election_mode.run, quick=True, seeds=(0,))
