"""EXP-T4 bench: phi = O(log^2 |V|) (Section 4) — the headline bound."""

from repro.experiments import e_t4_migration_handoff


def test_bench_t4_migration_handoff(run_experiment):
    run_experiment(e_t4_migration_handoff.run, quick=True, seeds=(0,))
