"""EXP-A9 bench: end-to-end session success on the full stack."""

from repro.experiments import e_a9_end_to_end


def test_bench_a9_end_to_end(run_experiment):
    run_experiment(e_a9_end_to_end.run, quick=True, seeds=(0,))
