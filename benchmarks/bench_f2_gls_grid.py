"""EXP-F2 bench: regenerate the Fig. 2 GLS grid table."""

from repro.experiments import e_f2_gls_grid


def test_bench_f2_gls_grid(run_experiment):
    run_experiment(e_f2_gls_grid.run, quick=True)
