"""EXP-T6 bench: Eq. (13b) and Eq. (14) per-level link structure."""

from repro.experiments import e_t6_cluster_link_freq


def test_bench_t6_cluster_link_freq(run_experiment):
    run_experiment(e_t6_cluster_link_freq.run, quick=True, seeds=(0,))
