"""EXP-T7 bench: CHLM hash equitability vs the naive Eq. (5) hash."""

from repro.experiments import e_t7_load_balance


def test_bench_t7_load_balance(run_experiment):
    run_experiment(e_t7_load_balance.run, quick=True, seeds=(0, 1))
