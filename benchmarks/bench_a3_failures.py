"""EXP-A3 bench: handoff under node failure (excluded-factor extension)."""

from repro.experiments import e_a3_failures


def test_bench_a3_failures(run_experiment):
    run_experiment(e_a3_failures.run, quick=True, seeds=(0,))
