"""EXP-T8 bench: GLS vs CHLM overhead under identical mobility."""

from repro.experiments import e_t8_gls_vs_chlm


def test_bench_t8_gls_vs_chlm(run_experiment):
    run_experiment(e_t8_gls_vs_chlm.run, quick=True, seeds=(0,))
