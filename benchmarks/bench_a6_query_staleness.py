"""EXP-A6 bench: query correctness with a stale LM database."""

from repro.experiments import e_a6_query_staleness


def test_bench_a6_query_staleness(run_experiment):
    run_experiment(e_a6_query_staleness.run, quick=True, seeds=(0,))
