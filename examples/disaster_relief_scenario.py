#!/usr/bin/env python
"""Disaster-relief deployment: squad (group) mobility vs independent RWP.

Hierarchical MANET papers (HSR [11,12], MMWN [13] — the systems that
motivate this paper's analysis) target exactly this workload: rescue
squads whose members move *together*.  Group motion keeps level-1
clusters nearly frozen, so location-management handoff should collapse
compared to independent random-waypoint motion of the same population at
the same speed.

This example runs both mobility regimes over the same deployment scale
and prints the handoff ledger side by side.

Run:  python examples/disaster_relief_scenario.py
"""

import numpy as np

from repro.sim import Scenario, run_scenario


def describe(label: str, res) -> None:
    led = res.ledger
    print(f"\n--- {label} ---")
    print(f"  f_0 (link churn)        : {res.f0:7.3f} events/node/s")
    print(f"  phi (migration handoff) : {res.phi:7.3f} pkts/node/s")
    print(f"  gamma (reorg handoff)   : {res.gamma:7.3f} pkts/node/s")
    print(f"  registration            : {led.registration_rate:7.3f} pkts/node/s")
    print(f"  pure migration events/s : "
          + ", ".join(f"k={k}: {v:.3f}" for k, v in led.f_k().items()))


def main():
    n = 240
    steps = 60
    speed = 2.0  # squads move fast; what matters is *relative* motion

    rwp = Scenario(
        n=n, steps=steps, warmup=10, speed=speed, seed=3,
        mobility="random_waypoint", max_levels=3,
    )
    squads = Scenario(
        n=n, steps=steps, warmup=10, speed=speed, seed=3,
        mobility="group",
        mobility_kwargs={"n_groups": 12, "group_radius": 25.0,
                         "jitter_speed": 0.3},
        max_levels=3,
    )

    print(f"{n} responders, {speed} m/s, {steps} s metered "
          f"(12 squads of ~{n // 12} in the group regime)")
    res_rwp = run_scenario(rwp)
    describe("independent motion (random waypoint)", res_rwp)
    res_grp = run_scenario(squads)
    describe("squad motion (reference-point group mobility)", res_grp)

    total_rwp = res_rwp.handoff_rate
    total_grp = res_grp.handoff_rate
    print(f"\ntotal handoff: {total_rwp:.2f} -> {total_grp:.2f} pkts/node/s "
          f"({total_rwp / max(total_grp, 1e-9):.2f}x)")
    fk_r = res_rwp.ledger.f_k()
    fk_g = res_grp.ledger.f_k()
    for k in sorted(set(fk_r) & set(fk_g)):
        if fk_g[k] > 0:
            print(f"  level-{k} migration events: {fk_r[k]:.3f} -> "
                  f"{fk_g[k]:.3f} /node/s ({fk_r[k] / fk_g[k]:.1f}x less)")
    print("Reading: group correlation cuts *boundary crossings* — and the "
          "cut deepens with level, because squads rarely leave high-level "
          "clusters.  Residual gamma comes from squads brushing past each "
          "other (link churn between groups).")


if __name__ == "__main__":
    main()
