#!/usr/bin/env python
"""Quickstart: build a MANET, cluster it, route, and manage locations.

Walks the full public API in one sitting:

1. deploy nodes uniformly in a disc (the paper's model),
2. form the unit-disk radio graph,
3. build the recursive ALCA clustered hierarchy (Fig. 1),
4. route with strict hierarchical routing vs flat shortest path,
5. place CHLM location servers and resolve a location query,
6. run the mobile simulator for a few seconds and read the handoff meter.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import full_assignment, resolve
from repro.geometry import disc_for_density
from repro.graphs import CompactGraph
from repro.hierarchy import build_hierarchy, hierarchy_stats
from repro.radio import radius_for_degree, unit_disk_edges
from repro.routing import FlatRouter, HierarchicalRouter, hierarchical_table_sizes
from repro.sim import Scenario, run_scenario


def main():
    # 1. Deployment: 300 nodes, fixed density (area grows with n).
    n = 300
    density = 0.02  # nodes per m^2
    region = disc_for_density(n, density)
    rng = np.random.default_rng(42)
    positions = region.sample(n, rng)
    print(f"deployed {n} nodes in a disc of radius {region.radius:.0f} m")

    # 2. Unit-disk radio graph sized for average degree ~9.
    r_tx = radius_for_degree(9.0, density)
    edges = unit_disk_edges(positions, r_tx)
    print(f"R_tx = {r_tx:.1f} m -> {len(edges)} links, "
          f"mean degree {2 * len(edges) / n:.1f}")

    # 3. Recursive ALCA hierarchy (radio-model level links).
    h = build_hierarchy(np.arange(n), edges, max_levels=3,
                        level_mode="radio", positions=positions, r0=r_tx)
    print(f"\nclustered hierarchy: L = {h.num_levels} levels")
    for s in hierarchy_stats(h):
        print(f"  level {s.k}: |V_k|={s.n_nodes:4d}  |E_k|={s.n_edges:5d}  "
              f"alpha={s.alpha:5.2f}  d_k={s.mean_degree:5.2f}")
    v = 123
    print(f"hierarchical address of node {v}: {h.address(v)}")

    # 4. Routing: strict hierarchical vs flat.
    g = CompactGraph(np.arange(n), edges)
    hier_router = HierarchicalRouter(h, g)
    flat_router = FlatRouter(g)
    s, d = 5, 250
    hp = hier_router.hop_count(s, d)
    fp = flat_router.hop_count(s, d)
    print(f"\nroute {s} -> {d}: hierarchical {hp} hops, flat {fp} hops "
          f"(stretch {hp / max(fp, 1):.2f})")
    table = hierarchical_table_sizes(h)
    print(f"routing state per node: hierarchical map {table.mean():.1f} "
          f"entries vs flat {n - 1}")

    # 5. CHLM location management.
    assignment = full_assignment(h)
    print(f"\nCHLM placed {len(assignment.servers)} (subject, level) entries; "
          f"node {v}'s servers: {assignment.servers_of(v)}")
    q = resolve(h, assignment, s, v, flat_router.hop_count)
    print(f"query: node {s} resolves node {v} at shared level {q.hit_level} "
          f"for {q.packets} packets -> address {q.address}")

    # 6. Mobility: meter handoff for 30 simulated seconds.
    sc = Scenario(n=200, steps=30, warmup=10, speed=1.0, seed=7, max_levels=3)
    res = run_scenario(sc)
    print(f"\nmobile run (n={sc.n}, mu={sc.speed} m/s, {sc.duration:.0f} s):")
    print(f"  f_0   = {res.f0:.2f} link events/node/s (Eq. 4)")
    print(f"  phi   = {res.phi:.3f} pkts/node/s (migration handoff, Sec 4)")
    print(f"  gamma = {res.gamma:.3f} pkts/node/s (reorg handoff, Sec 5)")
    print(f"  total = {res.handoff_rate:.3f} vs log^2(n) = {np.log(sc.n) ** 2:.1f}")


if __name__ == "__main__":
    main()
