#!/usr/bin/env python
"""Render the Fig. 1 picture for a generated network, as SVG.

Produces two self-contained SVG files (no plotting libraries needed):

* ``network_hierarchy.svg`` — level-1 cluster hulls, clusterheads, links;
* ``network_route.svg`` — a hop-by-hop hierarchical route highlighted.

Run:  python examples/visualize_network.py [outdir]
"""

import sys

import numpy as np

from repro.geometry import disc_for_density
from repro.graphs import CompactGraph
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges
from repro.routing import ForwardingFabric
from repro.viz import render_network_svg


def main():
    outdir = sys.argv[1] if len(sys.argv) > 1 else "."
    n, density = 220, 0.02
    region = disc_for_density(n, density)
    rng = np.random.default_rng(8)
    pts = region.sample(n, rng)
    r_tx = radius_for_degree(9.0, density)
    edges = unit_disk_edges(pts, r_tx)
    h = build_hierarchy(np.arange(n), edges, max_levels=3,
                        level_mode="radio", positions=pts, r0=r_tx)

    p1 = f"{outdir}/network_hierarchy.svg"
    render_network_svg(pts, edges, hierarchy=h, hull_level=1, path=p1)
    print(f"wrote {p1} (level-1 clusters: "
          f"{h.levels[1].n_nodes}, heads enlarged)")

    fabric = ForwardingFabric(h, CompactGraph(np.arange(n), edges))
    res = fabric.forward(3, 210)
    p2 = f"{outdir}/network_route.svg"
    render_network_svg(pts, edges, hierarchy=h, hull_level=2,
                       route=res.path if res.delivered else None, path=p2)
    print(f"wrote {p2} (route 3 -> 210: "
          f"{'delivered in ' + str(res.hops) + ' hops' if res.delivered else 'failed'})")


if __name__ == "__main__":
    main()
