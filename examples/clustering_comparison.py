#!/usr/bin/env python
"""Ablation: ALCA (the paper) vs max-min d-hop clustering (Amis et al.).

DESIGN.md calls out the clustering algorithm as an ablation axis: the
paper assumes ALCA, but cites max-min d-cluster as the scalable
alternative.  This example runs the same mobility trace under both and
compares hierarchy shape (arity, depth) and the resulting handoff bill.

Run:  python examples/clustering_comparison.py
"""

import numpy as np

from repro.sim import Scenario, run_scenario


def report(label, res):
    sizes = {k: res.level_series.mean_size(k) for k in res.level_series.levels()}
    print(f"\n--- {label} ---")
    print("  mean level sizes  :",
          " -> ".join(f"{v:.0f}" for _, v in sorted(sizes.items())))
    print(f"  phi               : {res.phi:7.3f} pkts/node/s")
    print(f"  gamma             : {res.gamma:7.3f} pkts/node/s")
    print(f"  total handoff     : {res.handoff_rate:7.3f} pkts/node/s")


def main():
    n = 250
    common = dict(n=n, steps=50, warmup=10, speed=1.0, seed=17, max_levels=3)

    alca = run_scenario(Scenario(clustering="lca", **common))
    report("ALCA (1-hop ID clustering; the paper's algorithm)", alca)

    for d in (1, 2):
        mm = run_scenario(Scenario(clustering="maxmin", maxmin_d=d, **common))
        report(f"max-min d-cluster, d={d}", mm)
        if d == 1:
            print("  (d=1 behaves like an asynchronous LCA, per Section 2.2)")

    print("\nReading: max-min with d=2 forms fewer, larger level-1 "
          "clusters (higher arity), trading fewer hierarchy levels against "
          "larger intra-cluster transfer distances.")


if __name__ == "__main__":
    main()
