#!/usr/bin/env python
"""CHLM protocol walkthrough — the paper's "node 63" narrative, live.

Section 3.2 of the paper walks node 63 through its location-server
placement: level 1 needs no server; the level-2 server is found by
hashing into a sibling level-1 cluster (59) and then into a member node
(33); the level-3 server by hashing into a level-2 cluster (85), a
level-1 cluster (37), and finally a node.  This example replays that
narrative on a generated network, then perturbs the topology to show a
handoff: the focal node migrates and the LM entries visibly move.

Run:  python examples/lm_walkthrough.py
"""

import numpy as np

from repro.core import (
    HandoffEngine,
    LMDatabase,
    full_assignment,
    lm_levels,
    resolve,
    select_server,
)
from repro.geometry import disc_for_density
from repro.graphs import CompactGraph
from repro.hierarchy import build_hierarchy
from repro.mobility import RandomWaypoint
from repro.radio import radius_for_degree, unit_disk_edges
from repro.routing import FlatRouter


def build(pts, r_tx, n):
    edges = unit_disk_edges(pts, r_tx)
    return edges, build_hierarchy(
        np.arange(n), edges, max_levels=3,
        level_mode="radio", positions=pts, r0=r_tx,
    )


def main():
    n = 200
    density = 0.02
    r_tx = radius_for_degree(9.0, density)
    region = disc_for_density(n, density)
    rng = np.random.default_rng(63)
    model = RandomWaypoint(n, region, 1.5, rng)
    pts = model.positions.copy()
    edges, h = build(pts, r_tx, n)

    focal = 63
    print(f"=== the 'node {focal}' walkthrough (Section 3.2) ===")
    print(f"hierarchical address: {h.address(focal)}")
    print(f"level-1 cluster head: {h.cluster_of(focal, 1)} "
          "(no LM server needed: full topology known inside level-1)")

    for level in range(2, lm_levels(h) + 1):
        tag = "virtual global" if level == h.num_levels + 1 else f"level-{level}"
        srv = select_server(h, focal, level)
        if level <= h.num_levels:
            cluster = h.cluster_of(focal, level)
            print(f"{tag} server: hash descends inside cluster {cluster} "
                  f"-> node {srv}")
        else:
            print(f"{tag} server: hash over the top-level cluster set "
                  f"-> node {srv}")

    assignment = full_assignment(h)
    db = LMDatabase(h, assignment)
    print(f"\nnode {focal} itself serves {len(db.table_of(focal))} entries; "
          f"network mean {db.entries_per_node().mean():.1f} "
          "(Theta(log n) duty per node)")

    g = CompactGraph(np.arange(n), edges)
    router = FlatRouter(g)
    q = resolve(h, assignment, 5, focal, router.hop_count)
    print(f"query 5 -> {focal}: hit at level {q.hit_level} after {q.probes} "
          f"probe(s), {q.packets} packets; resolved address {q.address}")

    # Now move and watch the handoff.
    print("\n=== handoff in motion ===")
    engine = HandoffEngine()
    engine.observe(h, router.hop_count)
    before = engine.assignment.servers_of(focal)
    for step in range(1, 31):
        model.step(1.0)
        pts = model.positions.copy()
        edges, h = build(pts, r_tx, n)
        router = FlatRouter(CompactGraph(np.arange(n), edges))
        report = engine.observe(h, router.hop_count)
        after = engine.assignment.servers_of(focal)
        if after != before:
            moved = {lvl: (before.get(lvl), after.get(lvl))
                     for lvl in set(before) | set(after)
                     if before.get(lvl) != after.get(lvl)}
            print(f"t={step:2d}s: node {focal}'s servers changed: "
                  + ", ".join(f"L{lvl}: {a} -> {b}" for lvl, (a, b) in
                              sorted(moved.items()))
                  + f"  (step totals: phi={report.phi_packets} pkts, "
                    f"gamma={report.gamma_packets} pkts)")
            before = after
    print("done: every server change above was metered as handoff "
          "packets, attributed to migration or reorganization.")


if __name__ == "__main__":
    main()
