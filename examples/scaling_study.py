#!/usr/bin/env python
"""Scaling study: reproduce the paper's headline Theta(log^2 |V|) bound.

Sweeps the node count at fixed density with L = Theta(log n) hierarchy
levels, meters migration (phi) and reorganization (gamma) handoff rates,
and fits the total against the competing growth shapes.  This is the
executable version of the paper's conclusion: "the capacity of MANET
links need only grow at a polylogarithmic rate".

Runs on the cached sweep runner (:mod:`repro.sim.sweep`): pass
``--parallel`` to fan the grid over all cores and ``--cache`` to
memoize finished simulations on disk, so re-running the study (or
widening the grid) only simulates what is new.

Run:  python examples/scaling_study.py [--full] [--parallel] [--cache]
"""

import os
import sys
from dataclasses import replace

import numpy as np

from repro.analysis import (
    compare_shapes,
    fit_power,
    levels_for,
    shape_by_flatness,
)
from repro.sim import Scenario, cached_sweep, default_cache_dir, print_progress

METRICS = {
    "phi": lambda r: r.phi,
    "gamma": lambda r: r.gamma,
    "total": lambda r: r.handoff_rate,
}


def main():
    full = "--full" in sys.argv
    use_parallel = "--parallel" in sys.argv
    use_cache = "--cache" in sys.argv
    ns = (100, 200, 400, 800, 1600, 3200) if full else (100, 200, 400, 800)
    seeds = (0, 1, 2) if full else (0, 1)
    steps = 80 if full else 40

    base = Scenario(n=100, steps=steps, warmup=10, speed=1.0,
                    hop_mode="euclidean")
    workers = (os.cpu_count() or 1) if use_parallel else 0
    print(f"sweeping n in {ns} with {len(seeds)} seeds, {steps} steps each"
          f" ({'parallel' if use_parallel else 'serial'}"
          f"{', cached' if use_cache else ''})...")
    points = cached_sweep(
        ns, base,
        metrics=METRICS,
        seeds=seeds,
        scenario_for=lambda sc, n: replace(sc, max_levels=levels_for(n)),
        workers=workers,
        cache_dir=default_cache_dir() if use_cache else None,
        progress=print_progress,
    )

    print(f"\n{'n':>6} {'L':>3} {'phi':>8} {'gamma':>8} {'total':>8} "
          f"{'total/log^2n':>13} {'total/sqrt(n)':>14}")
    for p in points:
        n = p.n
        print(f"{n:>6} {levels_for(n):>3} {p['phi']:>8.3f} {p['gamma']:>8.3f} "
              f"{p['total']:>8.3f} {p['total'] / np.log(n) ** 2:>13.4f} "
              f"{p['total'] / np.sqrt(n):>14.4f}")

    xs = [p.n for p in points]
    ys = [p["total"] for p in points]
    print("\nshape comparison (AIC, best first):",
          [f.shape for f in compare_shapes(xs, ys)])
    print("flatness ranking (CV of total/g(n)):",
          [(s, round(v, 3)) for s, v in shape_by_flatness(xs, ys)])
    p_exp, _ = fit_power(xs, ys)
    print(f"power-law exponent: {p_exp:.3f} "
          "(log^2-like curves sit well below sqrt's 0.5)")
    print("\nReading: if the total/log^2n column is ~flat while "
          "total/sqrt(n) declines, the paper's polylog bound holds.")


if __name__ == "__main__":
    main()
