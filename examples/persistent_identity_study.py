#!/usr/bin/env python
"""Cluster-identity persistence — the reproduction's headline finding.

Running the handoff meter on identical mobility traces under the two
cluster-naming disciplines:

* **head-named** (the paper's Fig. 1 convention): a cluster is known by
  its clusterhead's node ID, so every head replacement renames the
  cluster, renames an address component for all its members, and rekeys
  their hashed LM servers;
* **persistent** (`election_mode="persistent"`): clusters carry stable
  IDs that survive head handover, so only *geometric* reorganization
  moves LM data.

EXPERIMENTS.md shows the first regime breaks the paper's gamma =
O(log^2 n) bound at scale while the second recovers it.  This example
makes the mechanism visible on a single trajectory: it tracks one
level-2 cluster across head handovers and prints the renaming storm (or
silence) each discipline produces.

Run:  python examples/persistent_identity_study.py
"""

import numpy as np

from repro.sim import Scenario, run_scenario


def main():
    n = 300
    steps = 60
    common = dict(n=n, steps=steps, warmup=10, speed=1.5, seed=6,
                  max_levels=3, hop_mode="euclidean")

    print(f"{n} nodes, {steps} s, identical mobility; two naming disciplines\n")
    print(f"{'discipline':12s} {'phi':>8} {'gamma':>8} {'total':>8} "
          f"{'reg':>8} {'lvl-2 id changes':>17}")
    for mode in ("memoryless", "persistent"):
        res = run_scenario(Scenario(election_mode=mode, **common),
                           hop_sample_every=10_000)
        # Level-2 identity churn: how many level-2 cluster IDs appeared or
        # disappeared per step, on average.
        id_changes = res.level_series.address_changes.get(2, 0) / steps
        print(f"{mode:12s} {res.phi:>8.3f} {res.gamma:>8.3f} "
              f"{res.handoff_rate:>8.3f} "
              f"{res.ledger.registration_rate:>8.3f} {id_changes:>17.1f}")

    print(
        "\nReading: head naming roughly doubles the level-2 address churn "
        "and the handoff bill on the same physical motion — every head "
        "replacement renames a cluster and rekeys its members' LM "
        "entries.  Persistent identities leave only the geometric "
        "reorganization, and at scale that difference decides whether "
        "gamma obeys the paper's Theta(log^2 n) bound (EXP-A5 measures "
        "the scaling)."
    )


if __name__ == "__main__":
    main()
