#!/usr/bin/env python
"""Ablation: how the handoff bound responds to the mobility model.

The paper analyzes random waypoint (zero pause).  This example holds
everything else fixed and swaps the mobility model: random direction
(uniform stationary distribution — removes RWP's center-density bias),
group mobility (correlated motion), a pause-time variant, and the
stationary control (which must meter exactly zero).

Run:  python examples/mobility_sensitivity.py
"""

from repro.sim import Scenario, run_scenario


def main():
    n = 200
    steps = 50
    variants = [
        ("random waypoint, zero pause (paper)",
         dict(mobility="random_waypoint")),
        ("random waypoint, 10 s pause",
         dict(mobility="random_waypoint", mobility_kwargs={"pause": 10.0})),
        ("random direction (billiard)",
         dict(mobility="random_direction")),
        ("group mobility (8 squads)",
         dict(mobility="group",
              mobility_kwargs={"n_groups": 8, "group_radius": 30.0})),
        ("stationary (control: must be zero)",
         dict(mobility="stationary")),
    ]

    print(f"{'model':44s} {'f_0':>8} {'phi':>8} {'gamma':>8} {'total':>8}")
    for label, overrides in variants:
        sc = Scenario(n=n, steps=steps, warmup=10, speed=1.0, seed=5,
                      max_levels=3, **overrides)
        res = run_scenario(sc)
        print(f"{label:44s} {res.f0:>8.3f} {res.phi:>8.3f} "
              f"{res.gamma:>8.3f} {res.handoff_rate:>8.3f}")

    print("\nReading: handoff tracks *relative* motion.  Pauses and group "
          "correlation cut it; the stationary row certifies the meter has "
          "no false positives.")


if __name__ == "__main__":
    main()
