#!/usr/bin/env python
"""Hop-by-hop forwarding demo — Section 2.1, operationally.

The paper asserts that "packet forwarding decisions are made solely on
the hierarchical address of the destination node and every node has a
O(log|V|) hierarchical map".  This demo builds every node's map,
forwards packets one hop at a time (no central path computation), and
compares the result against flat shortest-path routing: delivery ratio,
per-node state, and stretch.

Run:  python examples/forwarding_demo.py
"""

import numpy as np

from repro.geometry import disc_for_density
from repro.graphs import CompactGraph
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges
from repro.routing import FlatRouter, ForwardingFabric


def main():
    n = 250
    density = 0.02
    region = disc_for_density(n, density)
    rng = np.random.default_rng(21)
    pts = region.sample(n, rng)
    r_tx = radius_for_degree(9.0, density)
    edges = unit_disk_edges(pts, r_tx)
    g = CompactGraph(np.arange(n), edges)
    h = build_hierarchy(np.arange(n), edges, max_levels=3,
                        level_mode="radio", positions=pts, r0=r_tx)

    fabric = ForwardingFabric(h, g)
    flat = FlatRouter(g)

    sizes = fabric.table_sizes()
    print(f"{n} nodes, L = {h.num_levels} levels")
    print(f"per-node hierarchical map: mean {sizes.mean():.1f}, "
          f"max {sizes.max()} entries (flat routing would need {n - 1})")

    # One packet, annotated.
    s, d = 3, 240
    res = fabric.forward(s, d)
    print(f"\npacket {s} -> {d} (address {h.address(d)}):")
    print(f"  delivered: {res.delivered} in {res.hops} hops "
          f"(shortest path: {flat.hop_count(s, d)})")
    print(f"  path: {' -> '.join(map(str, res.path))}")

    # Bulk statistics.
    delivered = attempted = 0
    stretches = []
    for _ in range(400):
        s, d = (int(x) for x in rng.integers(0, n, size=2))
        fp = flat.hop_count(s, d)
        if fp <= 0:
            continue
        attempted += 1
        res = fabric.forward(s, d)
        if res.delivered:
            delivered += 1
            stretches.append(res.hops / fp)
    print(f"\nbulk: {delivered}/{attempted} delivered "
          f"({delivered / attempted:.1%}), "
          f"mean stretch {np.mean(stretches):.2f}, "
          f"p95 stretch {np.percentile(stretches, 95):.2f}")
    print("Every decision used only the destination's hierarchical "
          "address and local state — no global routing tables.")


if __name__ == "__main__":
    main()
