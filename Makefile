PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-all

test:  ## tier-1 test suite
	$(PYTHON) -m pytest -x -q

bench:  ## kernel microbenchmarks -> BENCH_kernels.json (perf trajectory across PRs)
	$(PYTHON) -m pytest benchmarks/bench_kernels.py --benchmark-only \
		--benchmark-json=BENCH_kernels.json
	@$(PYTHON) -c "import json; d=json.load(open('BENCH_kernels.json')); \
		print('\n'.join(f\"{b['name']}: {b['stats']['mean']*1e3:.3f} ms\" for b in d['benchmarks']))"

bench-all:  ## every experiment benchmark (slow; regenerates all paper tables)
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
